//! General 1-D redistribution with *block-size change*, optimally
//! scheduled.
//!
//! The paper's library (and [`crate::plan_1d`]) keeps the block size fixed;
//! Park, Prasanna & Raghavendra's framework also covers redistributions
//! `(b₁, P) → (b₂, Q)` that change the blocking. This module implements
//! that general case with an *optimal* contention-free schedule:
//!
//! 1. Walk the element space once, cutting it at every source- and
//!    destination-block boundary; each maximal run has a constant
//!    (source, destination) owner pair. Runs for the same pair coalesce
//!    into one message.
//! 2. The messages form a bipartite multigraph (sources × destinations,
//!    one edge per communicating pair). By **König's edge-coloring
//!    theorem**, a bipartite graph with maximum degree Δ can be
//!    edge-colored with exactly Δ colors; each color class is a matching —
//!    a contention-free step. Δ is also an obvious lower bound (some
//!    endpoint must take part in Δ messages), so the schedule length is
//!    optimal.
//!
//! The coloring uses the classic Kempe-chain (alternating-path) algorithm:
//! insert edges one at a time; if the endpoints' free colors differ, flip
//! an alternating path to make one available.

use reshape_blockcyclic::DistVector;
use reshape_mpisim::{Comm, NetModel, Pod};

use crate::cost::{RedistCost, PACK_BANDWIDTH};

const TAG_GENERAL1D_BASE: u32 = 8_300_000;

/// One coalesced message: `src` (rank in the old layout) sends the listed
/// global element runs `(start, len)` to `dst` (rank in the new layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GTransfer {
    pub src: usize,
    pub dst: usize,
    /// Global `(start, len)` element runs, ascending and non-overlapping.
    pub runs: Vec<(usize, usize)>,
}

impl GTransfer {
    pub fn elems(&self) -> usize {
        self.runs.iter().map(|&(_, l)| l).sum()
    }
}

/// A general 1-D redistribution plan between block-cyclic layouts that may
/// differ in both block size and process count.
#[derive(Clone, Debug)]
pub struct GeneralPlan1d {
    pub n: usize,
    pub b_src: usize,
    pub p: usize,
    pub b_dst: usize,
    pub q: usize,
    /// Optimal contention-free schedule: each step is a matching.
    pub steps: Vec<Vec<GTransfer>>,
}

impl GeneralPlan1d {
    /// Bytes crossing the network (src rank ≠ dst rank).
    pub fn network_bytes(&self, elem_size: usize) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|t| t.src != t.dst)
            .map(|t| t.elems() * elem_size)
            .sum()
    }
}

/// Build the plan for moving an `n`-element array from `(b_src, p)` to
/// `(b_dst, q)` block-cyclic layout.
pub fn plan_general_1d(n: usize, b_src: usize, p: usize, b_dst: usize, q: usize) -> GeneralPlan1d {
    assert!(b_src > 0 && b_dst > 0 && p > 0 && q > 0, "degenerate layout");
    // Phase 1: cut into constant-owner-pair runs and coalesce per pair.
    let mut pair_runs: std::collections::BTreeMap<(usize, usize), Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    let mut e = 0usize;
    while e < n {
        let src = (e / b_src) % p;
        let dst = (e / b_dst) % q;
        // Run extends to the next source- or destination-block boundary.
        let next_src_cut = (e / b_src + 1) * b_src;
        let next_dst_cut = (e / b_dst + 1) * b_dst;
        let end = next_src_cut.min(next_dst_cut).min(n);
        pair_runs.entry((src, dst)).or_default().push((e, end - e));
        e = end;
    }

    // Phase 2: optimal bipartite edge coloring.
    let edges: Vec<(usize, usize)> = pair_runs.keys().copied().collect();
    let colors = color_bipartite(&edges, p, q);
    let nsteps = colors.iter().copied().max().map_or(0, |c| c + 1);
    let mut steps: Vec<Vec<GTransfer>> = vec![Vec::new(); nsteps];
    for ((&(src, dst), runs), color) in pair_runs.iter().zip(&colors) {
        steps[*color].push(GTransfer {
            src,
            dst,
            runs: runs.clone(),
        });
    }
    GeneralPlan1d {
        n,
        b_src,
        p,
        b_dst,
        q,
        steps,
    }
}

/// König edge coloring of a bipartite simple graph given as (left, right)
/// edges. Returns one color per edge, using exactly Δ colors.
fn color_bipartite(edges: &[(usize, usize)], nl: usize, nr: usize) -> Vec<usize> {
    // Degree bound.
    let mut dl = vec![0usize; nl];
    let mut dr = vec![0usize; nr];
    for &(u, v) in edges {
        dl[u] += 1;
        dr[v] += 1;
    }
    let delta = dl
        .iter()
        .chain(dr.iter())
        .copied()
        .max()
        .unwrap_or(0);
    // colored[u][c] = Some(v): left u matched to right v in color c.
    let mut left: Vec<Vec<Option<usize>>> = vec![vec![None; delta]; nl];
    let mut right: Vec<Vec<Option<usize>>> = vec![vec![None; delta]; nr];
    let mut colors = vec![usize::MAX; edges.len()];

    for &(u, v) in edges.iter() {
        let cu = (0..delta).find(|&c| left[u][c].is_none()).expect("degree bound");
        let cv = (0..delta).find(|&c| right[v][c].is_none()).expect("degree bound");
        if cu != cv {
            // Make cu free at v: walk the maximal alternating (cu, cv) path
            // starting from v's cu-colored edge and swap the two colors
            // along it. In a bipartite graph the path cannot reach u, so cu
            // stays free at u (König's argument).
            let other = |c: usize| if c == cu { cv } else { cu };
            let mut path: Vec<(usize, usize, usize)> = Vec::new(); // (l, r, color)
            let mut at_right = true;
            let mut node = v;
            let mut col = cu;
            loop {
                if at_right {
                    match right[node][col] {
                        None => break,
                        Some(l) => {
                            path.push((l, node, col));
                            node = l;
                        }
                    }
                } else {
                    match left[node][col] {
                        None => break,
                        Some(r) => {
                            path.push((node, r, col));
                            node = r;
                        }
                    }
                }
                at_right = !at_right;
                col = other(col);
            }
            for &(l, r, c) in &path {
                left[l][c] = None;
                right[r][c] = None;
            }
            for &(l, r, c) in &path {
                let o = other(c);
                left[l][o] = Some(r);
                right[r][o] = Some(l);
            }
        }
        debug_assert!(left[u][cu].is_none(), "cu must be free at u");
        debug_assert!(right[v][cu].is_none(), "cu must be free at v after the flip");
        left[u][cu] = Some(v);
        right[v][cu] = Some(u);
    }

    // The flips above change colors of earlier edges; recompute every
    // edge's color from the matching tables (each (u,v) appears in exactly
    // one color slot).
    for (idx, &(u, v)) in edges.iter().enumerate() {
        let c = (0..delta)
            .find(|&c| left[u][c] == Some(v))
            .expect("edge lost during coloring");
        colors[idx] = c;
    }
    colors
}

/// Execute a general plan collectively over `comm` (old layout ranks
/// `0..p`, new layout ranks `0..q`).
pub fn redistribute_general_1d<T: Pod + Default>(
    comm: &Comm,
    plan: &GeneralPlan1d,
    src: Option<&DistVector<T>>,
) -> Option<DistVector<T>> {
    assert!(comm.size() >= plan.p.max(plan.q), "communicator too small");
    let me = comm.rank();
    if me < plan.p {
        let v = src.expect("source rank must supply its part");
        assert_eq!(
            (v.n, v.nb, v.nprocs, v.iproc),
            (plan.n, plan.b_src, plan.p, me),
            "source layout mismatch"
        );
    }
    let mut out = (me < plan.q).then(|| DistVector::<T>::new(plan.n, plan.b_dst, me, plan.q));

    let g2l = |g: usize, b: usize, procs: usize| -> usize { (g / b / procs) * b + g % b };

    let mut buf: Vec<T> = Vec::new();
    for (t, step) in plan.steps.iter().enumerate() {
        let tag = TAG_GENERAL1D_BASE + t as u32;
        if let Some(v) = src.filter(|_| me < plan.p) {
            for tr in step.iter().filter(|tr| tr.src == me) {
                buf.clear();
                for &(start, len) in &tr.runs {
                    let l0 = g2l(start, plan.b_src, plan.p);
                    for off in 0..len {
                        buf.push(v.get_local(l0 + off));
                    }
                }
                if tr.dst == me {
                    unpack(plan, tr, &buf, out.as_mut().expect("dst"), &g2l);
                } else {
                    comm.send(tr.dst, tag, &buf);
                }
            }
        }
        if let Some(part) = out.as_mut() {
            for tr in step.iter().filter(|tr| tr.dst == me && tr.src != me) {
                comm.recv_into(tr.src, tag, &mut buf);
                unpack(plan, tr, &buf, part, &g2l);
            }
        }
    }
    out
}

fn unpack<T: Pod + Default>(
    plan: &GeneralPlan1d,
    tr: &GTransfer,
    buf: &[T],
    part: &mut DistVector<T>,
    g2l: &dyn Fn(usize, usize, usize) -> usize,
) {
    let mut idx = 0;
    for &(start, len) in &tr.runs {
        let l0 = g2l(start, plan.b_dst, plan.q);
        for off in 0..len {
            part.set_local(l0 + off, buf[idx]);
            idx += 1;
        }
    }
    assert_eq!(idx, buf.len(), "payload length mismatch");
}

/// Contention-aware analytic cost (steps are matchings, so this matches the
/// plain per-step-max evaluator).
pub fn evaluate_general_1d(plan: &GeneralPlan1d, elem_size: usize, net: &NetModel) -> RedistCost {
    let mut seconds = 0.0;
    for step in &plan.steps {
        let mut max_wire = 0usize;
        let mut max_touch = 0usize;
        for t in step {
            let bytes = t.elems() * elem_size;
            max_touch = max_touch.max(bytes);
            if t.src != t.dst {
                max_wire = max_wire.max(bytes);
            }
        }
        if max_wire > 0 {
            seconds += net.latency + 2.0 * net.overhead + max_wire as f64 / net.bandwidth;
        }
        if max_touch > 0 {
            seconds += 2.0 * max_touch as f64 / PACK_BANDWIDTH;
        }
    }
    RedistCost {
        steps: plan.steps.len(),
        network_bytes: plan.network_bytes(elem_size),
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reshape_mpisim::{NetModel, Universe};
    use std::collections::HashSet;

    fn check_plan(plan: &GeneralPlan1d) {
        // Completeness: every element moves exactly once, between the right
        // owners.
        let mut covered = vec![false; plan.n];
        for step in &plan.steps {
            let mut senders = HashSet::new();
            let mut receivers = HashSet::new();
            for t in step {
                assert!(senders.insert(t.src), "source {} sends twice in a step", t.src);
                assert!(receivers.insert(t.dst), "dest {} receives twice in a step", t.dst);
                for &(start, len) in &t.runs {
                    for (e, c) in covered.iter_mut().enumerate().skip(start).take(len) {
                        assert_eq!((e / plan.b_src) % plan.p, t.src, "element {e} wrong src");
                        assert_eq!((e / plan.b_dst) % plan.q, t.dst, "element {e} wrong dst");
                        assert!(!*c, "element {e} moved twice");
                        *c = true;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "some element never moved");
    }

    /// The schedule must be optimal: steps == max endpoint degree.
    fn check_optimal(plan: &GeneralPlan1d) {
        let mut dl = vec![0usize; plan.p];
        let mut dr = vec![0usize; plan.q];
        for t in plan.steps.iter().flatten() {
            dl[t.src] += 1;
            dr[t.dst] += 1;
        }
        let delta = dl.iter().chain(dr.iter()).copied().max().unwrap_or(0);
        assert_eq!(
            plan.steps.len(),
            delta,
            "schedule must use exactly Δ = {delta} steps (König)"
        );
    }

    #[test]
    fn block_size_change_same_procs() {
        let plan = plan_general_1d(60, 4, 3, 6, 3);
        check_plan(&plan);
        check_optimal(&plan);
    }

    #[test]
    fn block_and_proc_change_together() {
        let plan = plan_general_1d(120, 5, 4, 3, 6);
        check_plan(&plan);
        check_optimal(&plan);
    }

    #[test]
    fn same_block_reduces_to_fixed_case() {
        // With unchanged blocking the general plan must carry the same
        // bytes as the circulant plan.
        let plan = plan_general_1d(96, 4, 3, 4, 4);
        check_plan(&plan);
        check_optimal(&plan);
        let fixed = crate::plan_1d(96, 4, 3, 4);
        assert_eq!(plan.network_bytes(8), fixed.network_bytes(8));
    }

    #[test]
    fn ragged_tail() {
        let plan = plan_general_1d(17, 4, 2, 5, 3);
        check_plan(&plan);
        check_optimal(&plan);
    }

    #[test]
    fn executor_round_trips_with_reblocking() {
        let (n, b1, p, b2, q) = (50usize, 3usize, 2usize, 7usize, 4usize);
        Universe::new(4, 1, NetModel::ideal())
            .launch(4, None, "g1d", move |comm| {
                let plan = plan_general_1d(n, b1, p, b2, q);
                let me = comm.rank();
                let src =
                    (me < p).then(|| DistVector::from_fn(n, b1, me, p, |g| (g * 17 + 3) as f64));
                let out = redistribute_general_1d(&comm, &plan, src.as_ref());
                if me < q {
                    let out = out.expect("in destination layout");
                    for l in 0..out.local_len() {
                        let g = out.global_index(l);
                        assert_eq!(out.get_local(l), (g * 17 + 3) as f64, "element {g}");
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn cost_evaluator_reports_steps_and_bytes() {
        let plan = plan_general_1d(10_000, 100, 4, 250, 5);
        let c = evaluate_general_1d(&plan, 8, &NetModel::gigabit_ethernet());
        assert_eq!(c.steps, plan.steps.len());
        assert_eq!(c.network_bytes, plan.network_bytes(8));
        assert!(c.seconds > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn general_plans_are_complete_and_optimal(
            n in 1usize..500,
            b1 in 1usize..12,
            p in 1usize..7,
            b2 in 1usize..12,
            q in 1usize..7,
        ) {
            let plan = plan_general_1d(n, b1, p, b2, q);
            check_plan(&plan);
            check_optimal(&plan);
        }

        #[test]
        fn general_executor_preserves_data(
            n in 1usize..120,
            b1 in 1usize..6,
            p in 1usize..5,
            b2 in 1usize..6,
            q in 1usize..5,
        ) {
            let ranks = p.max(q);
            Universe::new(ranks, 1, NetModel::ideal())
                .launch(ranks, None, "pg1d", move |comm| {
                    let plan = plan_general_1d(n, b1, p, b2, q);
                    let me = comm.rank();
                    let src = (me < p)
                        .then(|| DistVector::from_fn(n, b1, me, p, |g| (g * 7 + 1) as u64));
                    let out = redistribute_general_1d(&comm, &plan, src.as_ref());
                    if me < q {
                        let out = out.expect("in destination layout");
                        for l in 0..out.local_len() {
                            let g = out.global_index(l);
                            assert_eq!(out.get_local(l), (g * 7 + 1) as u64);
                        }
                    }
                })
                .join_ok();
        }
    }
}
