//! General redistribution between *arbitrary* block-cyclic layouts.
//!
//! The paper's optimized path (and [`crate::plan_2d`]) requires the block
//! size to be unchanged by the move — that is all ReSHAPE's resizing needs.
//! Its §5 future work calls for "a wider array of distributed data
//! structures and other data redistribution algorithms"; this module is
//! that extension point: a correct (if unscheduled) redistribution between
//! any two descriptors that agree only on the global matrix shape — block
//! sizes and grid shapes may both change.
//!
//! The algorithm is element binning over a personalized all-to-all: each
//! source walks its local panel in canonical order, appending each element
//! to the bucket of its destination owner; each destination replays every
//! source's canonical order to know which elements arrived and where they
//! land. Cost is one alltoallv plus O(local elements) index arithmetic on
//! each side.

use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_mpisim::{Comm, Pod};

/// Redistribute between arbitrary block-cyclic layouts (grid shape and
/// block sizes may both change; the global `m × n` shape must not).
///
/// Collective over `comm`, which must cover `max(P, Q)` ranks with the old
/// grid on ranks `0..P` (row-major) and the new on `0..Q`. Source ranks
/// pass their panel; ranks outside the destination grid get `None` back.
pub fn redistribute_general<T: Pod + Default>(
    comm: &Comm,
    src_desc: Descriptor,
    dst_desc: Descriptor,
    src: Option<&DistMatrix<T>>,
) -> Option<DistMatrix<T>> {
    assert_eq!(
        (src_desc.m, src_desc.n),
        (dst_desc.m, dst_desc.n),
        "global shape must match"
    );
    let p = src_desc.nprow * src_desc.npcol;
    let q = dst_desc.nprow * dst_desc.npcol;
    assert!(comm.size() >= p.max(q), "communicator too small");
    let me = comm.rank();

    // Bin my elements by destination rank, in canonical (local row-major)
    // order.
    let mut buckets: Vec<Vec<T>> = (0..comm.size()).map(|_| Vec::new()).collect();
    if me < p {
        let m = src.expect("source rank must supply its panel");
        assert_eq!(m.desc, src_desc, "source descriptor mismatch");
        let (pr, pc) = (me / src_desc.npcol, me % src_desc.npcol);
        assert_eq!((m.myrow, m.mycol), (pr, pc), "source position mismatch");
        for li in 0..m.local_rows() {
            let gi = src_desc.local_to_global_row(li, pr);
            for lj in 0..m.local_cols() {
                let gj = src_desc.local_to_global_col(lj, pc);
                let (dr, dc) = dst_desc.owner_of(gi, gj);
                buckets[dr * dst_desc.npcol + dc].push(m.get_local(li, lj));
            }
        }
    }
    let received = comm.alltoallv(&buckets);

    if me >= q {
        return None;
    }
    let (dr, dc) = (me / dst_desc.npcol, me % dst_desc.npcol);
    let mut out = DistMatrix::<T>::new(dst_desc, dr, dc);
    // Replay each source's canonical order; consume the elements it sent me.
    for (s, data) in received.iter().enumerate().take(p) {
        let (pr, pc) = (s / src_desc.npcol, s % src_desc.npcol);
        let lr = src_desc.local_rows(pr);
        let lc = src_desc.local_cols(pc);
        let mut idx = 0;
        for li in 0..lr {
            let gi = src_desc.local_to_global_row(li, pr);
            for lj in 0..lc {
                let gj = src_desc.local_to_global_col(lj, pc);
                if dst_desc.owner_of(gi, gj) == (dr, dc) {
                    let ((_, _), (oli, olj)) = dst_desc.global_to_local(gi, gj);
                    out.set_local(oli, olj, data[idx]);
                    idx += 1;
                }
            }
        }
        assert_eq!(idx, data.len(), "stream from rank {s} mismatched");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reshape_mpisim::{NetModel, Universe};

    fn round_trip(
        m: usize,
        n: usize,
        src_blk: (usize, usize),
        dst_blk: (usize, usize),
        sg: (usize, usize),
        dg: (usize, usize),
    ) {
        let p = sg.0 * sg.1;
        let q = dg.0 * dg.1;
        let ranks = p.max(q);
        Universe::new(ranks, 1, NetModel::ideal())
            .launch(ranks, None, "general", move |comm| {
                let src_desc = Descriptor::new(m, n, src_blk.0, src_blk.1, sg.0, sg.1);
                let dst_desc = Descriptor::new(m, n, dst_blk.0, dst_blk.1, dg.0, dg.1);
                let me = comm.rank();
                let src = (me < p).then(|| {
                    DistMatrix::from_fn(src_desc, me / sg.1, me % sg.1, |i, j| {
                        (i * 5051 + j) as f64
                    })
                });
                let out = redistribute_general(&comm, src_desc, dst_desc, src.as_ref());
                if me < q {
                    let out = out.expect("destination rank gets a panel");
                    for li in 0..out.local_rows() {
                        let gi = dst_desc.local_to_global_row(li, out.myrow);
                        for lj in 0..out.local_cols() {
                            let gj = dst_desc.local_to_global_col(lj, out.mycol);
                            assert_eq!(out.get_local(li, lj), (gi * 5051 + gj) as f64);
                        }
                    }
                } else {
                    assert!(out.is_none());
                }
            })
            .join_ok();
    }

    #[test]
    fn changes_block_size_on_same_grid() {
        round_trip(20, 20, (2, 2), (5, 3), (2, 2), (2, 2));
    }

    #[test]
    fn changes_block_size_and_grid_together() {
        round_trip(24, 18, (3, 2), (4, 5), (2, 3), (3, 2));
    }

    #[test]
    fn expansion_with_reblocking() {
        round_trip(16, 16, (4, 4), (2, 2), (1, 2), (2, 3));
    }

    #[test]
    fn shrink_with_reblocking() {
        round_trip(16, 16, (2, 2), (8, 8), (2, 3), (1, 2));
    }

    #[test]
    fn agrees_with_scheduled_path_when_blocks_match() {
        // Same-block case must agree with the optimized executor.
        let (m, n) = (18, 24);
        Universe::new(6, 1, NetModel::ideal())
            .launch(6, None, "agree", move |comm| {
                let src_desc = Descriptor::new(m, n, 3, 2, 2, 2);
                let dst_desc = Descriptor::new(m, n, 3, 2, 2, 3);
                let me = comm.rank();
                let src = (me < 4).then(|| {
                    DistMatrix::from_fn(src_desc, me / 2, me % 2, |i, j| (i * 100 + j) as f64)
                });
                let a = redistribute_general(&comm, src_desc, dst_desc, src.as_ref());
                let plan = crate::plan_2d(src_desc, dst_desc);
                let b = crate::redistribute_2d(&comm, &plan, src.as_ref());
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(x.local_data(), y.local_data()),
                    (None, None) => {}
                    _ => panic!("presence mismatch on rank {me}"),
                }
            })
            .join_ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn arbitrary_layout_pairs_preserve_data(
            m in 1usize..30,
            n in 1usize..30,
            smb in 1usize..6,
            snb in 1usize..6,
            dmb in 1usize..6,
            dnb in 1usize..6,
            sg in 1usize..4,
            sc in 1usize..3,
            dg in 1usize..4,
            dc in 1usize..3,
        ) {
            round_trip(m, n, (smb, snb), (dmb, dnb), (sg, sc), (dg, dc));
        }
    }
}
