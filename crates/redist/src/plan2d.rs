//! 2-D ("checkerboard") redistribution schedules.
//!
//! The paper's extension of the 1-D table-based algorithm: rows and columns
//! of a 2-D block-cyclic matrix redistribute independently (`Pr → Qr` over
//! the row dimension, `Pc → Qc` over the column dimension), and the 2-D
//! schedule is the cross product of the two 1-D schedules. If every 1-D row
//! step is a partial permutation of process rows and every 1-D column step a
//! partial permutation of process columns, then each combined step is a
//! partial permutation of grid processes — contention-freedom is inherited.

use reshape_blockcyclic::Descriptor;

use crate::plan1d::{plan_1d, Redist1d};

/// One coalesced message of a 2-D step: the source grid process sends every
/// element whose global row block is in `row_blocks` **and** global column
/// block is in `col_blocks` to the destination grid process.
#[derive(Clone, Debug)]
pub struct Transfer2d {
    /// Source grid coordinates `(prow, pcol)` in the old grid.
    pub src: (usize, usize),
    /// Destination grid coordinates in the new grid.
    pub dst: (usize, usize),
    /// Global row-block indices carried (ascending).
    pub row_blocks: Vec<usize>,
    /// Global column-block indices carried (ascending).
    pub col_blocks: Vec<usize>,
}

/// A complete checkerboard redistribution schedule between two descriptors
/// that agree on the global matrix and block sizes but differ in grid shape.
#[derive(Clone, Debug)]
pub struct Redist2d {
    pub src: Descriptor,
    pub dst: Descriptor,
    /// Row-dimension 1-D schedule (kept for cost evaluation).
    pub row_plan: Redist1d,
    /// Column-dimension 1-D schedule.
    pub col_plan: Redist1d,
    /// Combined schedule; each step is a partial permutation of processes.
    pub steps: Vec<Vec<Transfer2d>>,
}

impl Redist2d {
    /// Element count of a transfer (product of its ragged row and column
    /// block lengths).
    pub fn transfer_elems(&self, t: &Transfer2d) -> usize {
        let rows: usize = t.row_blocks.iter().map(|&k| self.row_plan.block_len(k)).sum();
        let cols: usize = t.col_blocks.iter().map(|&k| self.col_plan.block_len(k)).sum();
        rows * cols
    }

    /// Total bytes crossing the network (source ≠ destination process).
    pub fn network_bytes(&self, elem_size: usize) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|t| self.src_rank(t.src) != self.dst_rank(t.dst))
            .map(|t| self.transfer_elems(t) * elem_size)
            .sum()
    }

    /// Rank (row-major) of a source grid coordinate in the old processor
    /// set.
    pub fn src_rank(&self, (r, c): (usize, usize)) -> usize {
        r * self.src.npcol + c
    }

    /// Rank (row-major) of a destination grid coordinate in the new set.
    pub fn dst_rank(&self, (r, c): (usize, usize)) -> usize {
        r * self.dst.npcol + c
    }
}

/// Build the checkerboard schedule between `src` and `dst` descriptors.
///
/// ```
/// use reshape_blockcyclic::Descriptor;
/// use reshape_redist::plan_2d;
/// // Expand a 16x16 matrix (2x2 blocks) from a 1x2 grid to 2x2.
/// let plan = plan_2d(
///     Descriptor::square(16, 2, 1, 2),
///     Descriptor::square(16, 2, 2, 2),
/// );
/// // Every step is a partial permutation: each process sends at most one
/// // message and receives at most one.
/// for step in &plan.steps {
///     let mut senders = std::collections::HashSet::new();
///     for t in step {
///         assert!(senders.insert(t.src));
///     }
/// }
/// assert!(plan.network_bytes(8) > 0);
/// ```
///
/// # Panics
///
/// Panics if the descriptors disagree on the global shape or block sizes —
/// the paper's redistribution changes the *processor grid*, never the
/// blocking.
pub fn plan_2d(src: Descriptor, dst: Descriptor) -> Redist2d {
    assert_eq!((src.m, src.n), (dst.m, dst.n), "global shape must match");
    assert_eq!((src.mb, src.nb), (dst.mb, dst.nb), "block sizes must match");
    let row_plan = plan_1d(src.m, src.mb, src.nprow, dst.nprow);
    let col_plan = plan_1d(src.n, src.nb, src.npcol, dst.npcol);
    let mut steps = Vec::with_capacity(row_plan.steps.len() * col_plan.steps.len());
    for rstep in &row_plan.steps {
        for cstep in &col_plan.steps {
            let mut step = Vec::with_capacity(rstep.len() * cstep.len());
            for rt in rstep {
                for ct in cstep {
                    step.push(Transfer2d {
                        src: (rt.src, ct.src),
                        dst: (rt.dst, ct.dst),
                        row_blocks: rt.blocks.clone(),
                        col_blocks: ct.blocks.clone(),
                    });
                }
            }
            if !step.is_empty() {
                steps.push(step);
            }
        }
    }
    Redist2d {
        src,
        dst,
        row_plan,
        col_plan,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    fn check_2d(plan: &Redist2d) {
        let d = &plan.src;
        // Element-level completeness: every element moves exactly once,
        // from its old owner to its new owner.
        let mut covered: HashMap<(usize, usize), usize> = HashMap::new();
        for step in &plan.steps {
            let mut senders = HashSet::new();
            let mut receivers = HashSet::new();
            for t in step {
                assert!(senders.insert(t.src), "grid source sends twice in step");
                assert!(receivers.insert(t.dst), "grid dest receives twice in step");
                for &rb in &t.row_blocks {
                    assert_eq!(rb % d.nprow, t.src.0);
                    assert_eq!(rb % plan.dst.nprow, t.dst.0);
                    for &cb in &t.col_blocks {
                        assert_eq!(cb % d.npcol, t.src.1);
                        assert_eq!(cb % plan.dst.npcol, t.dst.1);
                        *covered.entry((rb, cb)).or_insert(0) += 1;
                    }
                }
            }
        }
        let nrb = d.m.div_ceil(d.mb);
        let ncb = d.n.div_ceil(d.nb);
        assert_eq!(covered.len(), nrb * ncb, "every (row,col) block pair covered");
        assert!(covered.values().all(|&c| c == 1), "no block pair duplicated");
    }

    #[test]
    fn expand_1x2_to_2x2() {
        let src = Descriptor::square(16, 2, 1, 2);
        let dst = Descriptor::square(16, 2, 2, 2);
        check_2d(&plan_2d(src, dst));
    }

    #[test]
    fn expand_2x2_to_4x5() {
        let src = Descriptor::square(40, 2, 2, 2);
        let dst = Descriptor::square(40, 2, 4, 5);
        check_2d(&plan_2d(src, dst));
    }

    #[test]
    fn shrink_3x4_to_2x2() {
        let src = Descriptor::new(24, 36, 2, 3, 3, 4);
        let dst = Descriptor::new(24, 36, 2, 3, 2, 2);
        check_2d(&plan_2d(src, dst));
    }

    #[test]
    fn one_dimensional_row_layouts() {
        // 1-D row format (paper: "1-D (row or column format)").
        let src = Descriptor::square(30, 3, 2, 1);
        let dst = Descriptor::square(30, 3, 5, 1);
        check_2d(&plan_2d(src, dst));
    }

    #[test]
    fn step_count_is_product_of_1d_steps() {
        let src = Descriptor::square(120, 2, 2, 3);
        let dst = Descriptor::square(120, 2, 3, 4);
        let plan = plan_2d(src, dst);
        assert_eq!(
            plan.steps.len(),
            plan.row_plan.steps.len() * plan.col_plan.steps.len()
        );
    }

    #[test]
    fn same_grid_has_no_network_traffic() {
        let d = Descriptor::square(32, 4, 2, 2);
        let plan = plan_2d(d, d);
        check_2d(&plan);
        assert_eq!(plan.network_bytes(8), 0);
    }

    #[test]
    #[should_panic(expected = "block sizes must match")]
    fn mismatched_blocks_rejected() {
        let src = Descriptor::square(16, 2, 2, 2);
        let dst = Descriptor::square(16, 4, 2, 2);
        plan_2d(src, dst);
    }

    #[test]
    fn network_bytes_counts_only_moving_elements() {
        // 1x1 -> 1x2 of a 4x4 with 2x2 blocks: column blocks 0 stays on
        // (0,0), column block 1 moves. Half the matrix crosses the network.
        let src = Descriptor::square(4, 2, 1, 1);
        let dst = Descriptor::square(4, 2, 1, 2);
        let plan = plan_2d(src, dst);
        assert_eq!(plan.network_bytes(8), 8 * 8);
    }

    proptest! {
        #[test]
        fn checkerboard_schedules_hold_invariants(
            m in 1usize..200,
            n in 1usize..200,
            mb in 1usize..8,
            nb in 1usize..8,
            pr in 1usize..5,
            pc in 1usize..5,
            qr in 1usize..5,
            qc in 1usize..5,
        ) {
            let src = Descriptor::new(m, n, mb, nb, pr, pc);
            let dst = Descriptor::new(m, n, mb, nb, qr, qc);
            check_2d(&plan_2d(src, dst));
        }
    }
}
