//! Analytic cost evaluation of redistribution schedules.
//!
//! The paper's Performance Profiler records *measured* redistribution times;
//! the cluster simulator and the Figure 2(b) harness need the same numbers
//! without actually moving terabytes. Because the schedule is
//! contention-free, a step's duration is the *maximum* single message cost
//! in that step (all messages proceed in parallel on disjoint links), plus
//! pack/unpack at memory bandwidth on the busiest endpoint.

use reshape_mpisim::NetModel;

use crate::plan1d::Redist1d;
use crate::plan2d::Redist2d;

/// Memory bandwidth assumed for packing/unpacking message buffers
/// (bytes/second). A conservative figure for the paper's PowerPC 970 era.
pub const PACK_BANDWIDTH: f64 = 2.0e9;

/// Evaluated cost of a redistribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedistCost {
    /// Number of communication steps in the schedule.
    pub steps: usize,
    /// Bytes that actually cross the network.
    pub network_bytes: usize,
    /// Modeled wall-clock seconds for the whole redistribution.
    pub seconds: f64,
}

/// Cost of a 1-D schedule moving elements of `elem_size` bytes under `net`.
pub fn evaluate_1d(plan: &Redist1d, elem_size: usize, net: &NetModel) -> RedistCost {
    let mut seconds = 0.0;
    for step in &plan.steps {
        let mut max_wire = 0usize;
        let mut max_touch = 0usize;
        for t in step {
            let bytes = plan.transfer_bytes(t, elem_size);
            max_touch = max_touch.max(bytes);
            if t.src != t.dst {
                max_wire = max_wire.max(bytes);
            }
        }
        seconds += step_seconds(max_wire, max_touch, net);
    }
    RedistCost {
        steps: plan.steps.len(),
        network_bytes: plan.network_bytes(elem_size),
        seconds,
    }
}

/// Cost of a checkerboard schedule.
pub fn evaluate_2d(plan: &Redist2d, elem_size: usize, net: &NetModel) -> RedistCost {
    let mut seconds = 0.0;
    for step in &plan.steps {
        let mut max_wire = 0usize;
        let mut max_touch = 0usize;
        for t in step {
            let bytes = plan.transfer_elems(t) * elem_size;
            max_touch = max_touch.max(bytes);
            if plan.src_rank(t.src) != plan.dst_rank(t.dst) {
                max_wire = max_wire.max(bytes);
            }
        }
        seconds += step_seconds(max_wire, max_touch, net);
    }
    RedistCost {
        steps: plan.steps.len(),
        network_bytes: plan.network_bytes(elem_size),
        seconds,
    }
}

/// Throughput degradation per extra concurrent sender targeting one
/// receiver within a step (TCP-incast-style congestion on switched
/// Ethernet: simultaneous bursts at a single port overflow its buffer and
/// collapse aggregate goodput). The contention-free schedule keeps the
/// concurrency at 1 and never pays this.
pub const INCAST_PENALTY: f64 = 0.5;

/// Contention-aware cost of a 2-D plan: within a step, each process
/// serializes its own sends and receives, and a receiver hit by `k`
/// *concurrent* senders drains its bytes at `bandwidth / (1 +
/// INCAST_PENALTY·(k−1))`. For partial-permutation steps (the paper's
/// schedules) every `k = 1` and this coincides with [`evaluate_2d`]; for
/// the naive single-burst baseline it exposes the incast the circulant
/// schedule exists to avoid.
pub fn evaluate_2d_contended(plan: &Redist2d, elem_size: usize, net: &NetModel) -> RedistCost {
    use std::collections::HashMap;
    let mut seconds = 0.0;
    for step in &plan.steps {
        let mut sent: HashMap<usize, (usize, usize)> = HashMap::new(); // rank -> (bytes, msgs)
        let mut recvd: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut max_touch = 0usize;
        for t in step {
            let bytes = plan.transfer_elems(t) * elem_size;
            max_touch = max_touch.max(bytes);
            let (s, d) = (plan.src_rank(t.src), plan.dst_rank(t.dst));
            if s != d {
                let e = sent.entry(s).or_insert((0, 0));
                e.0 += bytes;
                e.1 += 1;
                let e = recvd.entry(d).or_insert((0, 0));
                e.0 += bytes;
                e.1 += 1;
            }
        }
        let send_time = sent
            .values()
            .map(|&(bytes, msgs)| bytes as f64 / net.bandwidth + msgs as f64 * net.overhead)
            .fold(0.0, f64::max);
        let recv_time = recvd
            .values()
            .map(|&(bytes, msgs)| {
                let incast = 1.0 + INCAST_PENALTY * (msgs.saturating_sub(1)) as f64;
                bytes as f64 * incast / net.bandwidth + msgs as f64 * net.overhead
            })
            .fold(0.0, f64::max);
        let wire = send_time.max(recv_time);
        if wire > 0.0 {
            seconds += net.latency + wire;
        }
        if max_touch > 0 {
            seconds += 2.0 * max_touch as f64 / PACK_BANDWIDTH;
        }
    }
    RedistCost {
        steps: plan.steps.len(),
        network_bytes: plan.network_bytes(elem_size),
        seconds,
    }
}

fn step_seconds(max_wire: usize, max_touch: usize, net: &NetModel) -> f64 {
    let mut s = 0.0;
    if max_wire > 0 {
        s += net.latency + 2.0 * net.overhead + max_wire as f64 / net.bandwidth;
    }
    if max_touch > 0 {
        // Pack on the sender + unpack on the receiver.
        s += 2.0 * max_touch as f64 / PACK_BANDWIDTH;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan_1d, plan_2d};
    use reshape_blockcyclic::Descriptor;

    #[test]
    fn identity_costs_only_memory_traffic() {
        let plan = plan_1d(1000, 10, 4, 4);
        let c = evaluate_1d(&plan, 8, &NetModel::gigabit_ethernet());
        assert_eq!(c.network_bytes, 0);
        // Only pack/unpack time remains.
        assert!(c.seconds < 1e-3);
    }

    #[test]
    fn cost_grows_with_matrix_size() {
        let net = NetModel::gigabit_ethernet();
        let small = plan_2d(
            Descriptor::square(1000, 10, 2, 2),
            Descriptor::square(1000, 10, 2, 4),
        );
        let large = plan_2d(
            Descriptor::square(4000, 10, 2, 2),
            Descriptor::square(4000, 10, 2, 4),
        );
        let cs = evaluate_2d(&small, 8, &net).seconds;
        let cl = evaluate_2d(&large, 8, &net).seconds;
        assert!(cl > cs * 4.0, "16x the data should cost well over 4x: {cs} vs {cl}");
    }

    #[test]
    fn cost_decreases_with_more_processors() {
        // Paper Figure 2(b): for a fixed matrix, redistribution cost falls
        // as the (source) processor count grows, because per-process volume
        // shrinks and steps run in parallel.
        let net = NetModel::gigabit_ethernet();
        let n = 8000;
        let from_small = plan_2d(
            Descriptor::square(n, 100, 1, 2),
            Descriptor::square(n, 100, 2, 2),
        );
        let from_large = plan_2d(
            Descriptor::square(n, 100, 4, 5),
            Descriptor::square(n, 100, 5, 5),
        );
        let c_small = evaluate_2d(&from_small, 8, &net).seconds;
        let c_large = evaluate_2d(&from_large, 8, &net).seconds;
        assert!(
            c_small > c_large,
            "expanding from 2 procs ({c_small}s) should cost more than from 20 ({c_large}s)"
        );
    }

    #[test]
    fn network_bytes_match_plan() {
        let plan = plan_2d(
            Descriptor::square(64, 4, 2, 2),
            Descriptor::square(64, 4, 2, 4),
        );
        let c = evaluate_2d(&plan, 8, &NetModel::gigabit_ethernet());
        assert_eq!(c.network_bytes, plan.network_bytes(8));
        assert_eq!(c.steps, plan.steps.len());
    }

    #[test]
    fn ideal_network_still_charges_memory() {
        let plan = plan_1d(1 << 20, 1 << 10, 2, 4);
        let c = evaluate_1d(&plan, 8, &NetModel::ideal());
        assert!(c.seconds > 0.0, "pack/unpack is never free");
    }
}
