//! Schedule executor: moves a real distributed matrix between grids.
//!
//! The executor runs over a single communicator covering `max(P, Q)` ranks,
//! where the old grid occupies ranks `0..P` (row-major) and the new grid
//! ranks `0..Q`. This matches ReSHAPE's process management exactly: on
//! expansion the parents keep the low ranks of the merged communicator, and
//! on shrink the retained subset is the low ranks of the old one.
//!
//! Steps execute in order; within a step each rank fires at most one send
//! and completes at most one receive (the schedule is a partial
//! permutation). The paper arms MPI persistent requests per step; buffered
//! sends give identical semantics here, and receive buffers are reused
//! across steps.

use reshape_blockcyclic::DistMatrix;
use reshape_mpisim::{Comm, Pod};

use crate::plan2d::{Redist2d, Transfer2d};

/// Base of the tag range used by redistribution steps. Redistribution runs
/// at a resize point with no other application traffic in flight, so a fixed
/// range is safe; it is kept far from small user tags as defense in depth.
const TAG_REDIST_BASE: u32 = 8_000_000;

/// Execute `plan` collectively. Ranks `0..P` supply their old panel in
/// `src`; ranks `0..Q` get the new panel back. A rank outside both ranges
/// (possible transiently during shrink) passes `None` and gets `None`.
///
/// # Panics
///
/// Panics if a rank that the plan says owns source data passes `None`, or
/// if the supplied matrix disagrees with the plan's source descriptor.
pub fn redistribute_2d<T: Pod + Default>(
    comm: &Comm,
    plan: &Redist2d,
    src: Option<&DistMatrix<T>>,
) -> Option<DistMatrix<T>> {
    let p = plan.src.nprow * plan.src.npcol;
    let q = plan.dst.nprow * plan.dst.npcol;
    assert!(
        comm.size() >= p.max(q),
        "communicator ({}) smaller than the larger grid ({})",
        comm.size(),
        p.max(q)
    );
    let me = comm.rank();
    let my_src = (me < p).then(|| (me / plan.src.npcol, me % plan.src.npcol));
    let my_dst = (me < q).then(|| (me / plan.dst.npcol, me % plan.dst.npcol));

    if let (Some((sr, sc)), Some(m)) = (my_src, src) {
        assert_eq!(m.desc, plan.src, "source matrix descriptor mismatch");
        assert_eq!((m.myrow, m.mycol), (sr, sc), "source matrix grid position mismatch");
    }
    if my_src.is_some() {
        assert!(src.is_some(), "rank {me} owns source data but supplied none");
    }

    let mut out = my_dst.map(|(dr, dc)| DistMatrix::<T>::new(plan.dst, dr, dc));

    // Causal trace: one executor span per rank-0 execution, stamped in
    // *virtual* time and parented to whatever span the caller is inside
    // (the driver's redist span, or the sim's redistribution phase).
    let trace_v0 = (me == 0 && reshape_telemetry::trace::enabled()).then(|| comm.vtime());

    // Per-phase wall-clock accounting (pack / transfer / unpack), recorded
    // once per execution. `tel` keeps the hot loops free of clock reads
    // when telemetry is off.
    let tel = reshape_telemetry::enabled();
    let mut pack_s = 0.0f64;
    let mut xfer_s = 0.0f64;
    let mut unpack_s = 0.0f64;
    let mut bytes_sent = 0u64;
    let mut transfers = 0u64;

    // The executor tolerates steps that are NOT partial permutations (a
    // rank may send and receive several messages per step): ReSHAPE's
    // schedules never need that, but the naive single-step baseline used by
    // the contention ablation does. Sends are buffered, so issuing every
    // send before any receive is deadlock-free.
    let mut buf: Vec<T> = Vec::new();
    for (t, step) in plan.steps.iter().enumerate() {
        let tag = TAG_REDIST_BASE + t as u32;
        if let (Some(sc), Some(m)) = (my_src, src) {
            for tr in step.iter().filter(|tr| tr.src == sc) {
                let t0 = tel.then(std::time::Instant::now);
                pack(plan, tr, m, &mut buf);
                if let Some(t0) = t0 {
                    pack_s += t0.elapsed().as_secs_f64();
                }
                if plan.dst_rank(tr.dst) == me {
                    // Local move: both endpoints are this rank.
                    let t0 = tel.then(std::time::Instant::now);
                    unpack(plan, tr, &buf, out.as_mut().expect("local move implies dest"));
                    if let Some(t0) = t0 {
                        unpack_s += t0.elapsed().as_secs_f64();
                    }
                } else {
                    let t0 = tel.then(std::time::Instant::now);
                    comm.send(plan.dst_rank(tr.dst), tag, &buf);
                    if let Some(t0) = t0 {
                        xfer_s += t0.elapsed().as_secs_f64();
                        transfers += 1;
                        bytes_sent += (buf.len() * std::mem::size_of::<T>()) as u64;
                    }
                }
            }
        }
        if let Some(dc) = my_dst {
            for tr in step.iter().filter(|tr| tr.dst == dc) {
                let from = plan.src_rank(tr.src);
                if from == me {
                    continue; // handled as a local move above
                }
                let t0 = tel.then(std::time::Instant::now);
                comm.recv_into(from, tag, &mut buf);
                if let Some(t0) = t0 {
                    xfer_s += t0.elapsed().as_secs_f64();
                }
                let t0 = tel.then(std::time::Instant::now);
                unpack(plan, tr, &buf, out.as_mut().expect("recv implies dest"));
                if let Some(t0) = t0 {
                    unpack_s += t0.elapsed().as_secs_f64();
                }
            }
        }
    }
    if tel {
        reshape_telemetry::incr("redist.executions", 1);
        reshape_telemetry::incr("redist.plan_steps", plan.steps.len() as u64);
        reshape_telemetry::incr("redist.transfers", transfers);
        reshape_telemetry::incr("redist.bytes_sent", bytes_sent);
        reshape_telemetry::observe("redist.pack_seconds", pack_s);
        reshape_telemetry::observe("redist.transfer_seconds", xfer_s);
        reshape_telemetry::observe("redist.unpack_seconds", unpack_s);
    }
    if let Some(v0) = trace_v0 {
        use reshape_telemetry::trace;
        let ctx = trace::current();
        trace::complete(
            ctx.trace,
            ctx.parent,
            format!(
                "redist_exec {}x{}->{}x{} ({} steps)",
                plan.src.nprow, plan.src.npcol, plan.dst.nprow, plan.dst.npcol, plan.steps.len()
            ),
            "redist_exec",
            "redist",
            v0,
            comm.vtime(),
        );
    }
    out
}

/// Serialize a transfer's elements from the source panel, row blocks outer,
/// global row order within a block, column blocks inner.
pub(crate) fn pack<T: Pod + Default>(
    plan: &Redist2d,
    tr: &Transfer2d,
    m: &DistMatrix<T>,
    buf: &mut Vec<T>,
) {
    buf.clear();
    let d = &plan.src;
    for &rb in &tr.row_blocks {
        let i0 = rb * d.mb;
        let i1 = (i0 + d.mb).min(d.m);
        for gi in i0..i1 {
            let (_, li) = reshape_blockcyclic::g2l(gi, d.mb, d.nprow);
            for &cb in &tr.col_blocks {
                let j0 = cb * d.nb;
                let j1 = (j0 + d.nb).min(d.n);
                for gj in j0..j1 {
                    let (_, lj) = reshape_blockcyclic::g2l(gj, d.nb, d.npcol);
                    buf.push(m.get_local(li, lj));
                }
            }
        }
    }
}

/// Mirror of [`pack`] on the destination layout.
pub(crate) fn unpack<T: Pod + Default>(
    plan: &Redist2d,
    tr: &Transfer2d,
    buf: &[T],
    m: &mut DistMatrix<T>,
) {
    let ds = &plan.src;
    let dd = &plan.dst;
    let mut idx = 0;
    for &rb in &tr.row_blocks {
        let i0 = rb * ds.mb;
        let i1 = (i0 + ds.mb).min(ds.m);
        for gi in i0..i1 {
            let (_, li) = reshape_blockcyclic::g2l(gi, dd.mb, dd.nprow);
            for &cb in &tr.col_blocks {
                let j0 = cb * ds.nb;
                let j1 = (j0 + ds.nb).min(ds.n);
                for gj in j0..j1 {
                    let (_, lj) = reshape_blockcyclic::g2l(gj, dd.nb, dd.npcol);
                    m.set_local(li, lj, buf[idx]);
                    idx += 1;
                }
            }
        }
    }
    assert_eq!(idx, buf.len(), "transfer payload length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan2d::plan_2d;
    use reshape_blockcyclic::Descriptor;
    use reshape_grid::GridContext;
    use reshape_mpisim::{NetModel, Universe};

    /// Launch max(p,q) ranks, build the source matrix on the p-grid,
    /// redistribute to the q-grid, and verify every element landed on its
    /// new owner with its value intact.
    fn round_trip(m: usize, n: usize, mb: usize, nb: usize, sg: (usize, usize), dg: (usize, usize)) {
        let p = sg.0 * sg.1;
        let q = dg.0 * dg.1;
        let ranks = p.max(q);
        let uni = Universe::new(ranks, 1, NetModel::ideal());
        uni.launch(ranks, None, "redist", move |comm| {
            let src_desc = Descriptor::new(m, n, mb, nb, sg.0, sg.1);
            let dst_desc = Descriptor::new(m, n, mb, nb, dg.0, dg.1);
            let plan = plan_2d(src_desc, dst_desc);
            let me = comm.rank();
            let src = (me < p).then(|| {
                DistMatrix::from_fn(src_desc, me / sg.1, me % sg.1, |i, j| (i * 7919 + j) as f64)
            });
            let out = redistribute_2d(&comm, &plan, src.as_ref());
            if me < q {
                let out = out.expect("destination rank gets a panel");
                for li in 0..out.local_rows() {
                    let gi = dst_desc.local_to_global_row(li, out.myrow);
                    for lj in 0..out.local_cols() {
                        let gj = dst_desc.local_to_global_col(lj, out.mycol);
                        assert_eq!(
                            out.get_local(li, lj),
                            (gi * 7919 + gj) as f64,
                            "element ({gi},{gj}) corrupted"
                        );
                    }
                }
            } else {
                assert!(out.is_none());
            }
        })
        .join_ok();
    }

    #[test]
    fn expand_1x2_to_2x2() {
        round_trip(16, 16, 2, 2, (1, 2), (2, 2));
    }

    #[test]
    fn expand_2x2_to_2x4() {
        round_trip(24, 32, 2, 2, (2, 2), (2, 4));
    }

    #[test]
    fn shrink_2x4_to_2x2() {
        round_trip(24, 32, 2, 2, (2, 4), (2, 2));
    }

    #[test]
    fn coprime_grids() {
        round_trip(30, 42, 3, 2, (2, 3), (3, 5));
    }

    #[test]
    fn ragged_blocks() {
        round_trip(17, 23, 4, 5, (2, 2), (3, 2));
    }

    #[test]
    fn rectangular_matrix_one_dimensional_grids() {
        round_trip(40, 10, 2, 2, (4, 1), (1, 5));
    }

    #[test]
    fn identity_redistribution() {
        round_trip(12, 12, 3, 3, (2, 2), (2, 2));
    }

    #[test]
    fn redistribute_after_real_expansion() {
        // End-to-end ReSHAPE expand: 2 ranks on 1x2 spawn 2 more, merge, and
        // redistribute the live matrix onto the 2x2 grid.
        let uni = Universe::new(4, 1, NetModel::ideal());
        let h = uni.launch(2, None, "grow", |comm| {
            let src_desc = Descriptor::square(16, 2, 1, 2);
            let dst_desc = Descriptor::square(16, 2, 2, 2);
            let a = DistMatrix::from_fn(src_desc, 0, comm.rank(), |i, j| (i * 100 + j) as f64);
            let merged = comm.spawn_merge(2, None, "new", move |ctx| {
                let merged = ctx.parent.merge();
                let plan = plan_2d(src_desc, dst_desc);
                let out = redistribute_2d::<f64>(&merged, &plan, None);
                let out = out.expect("spawned ranks join the new grid");
                let grid = GridContext::new(&merged, 2, 2);
                let full = out.gather(&grid);
                assert!(full.is_none(), "only merged rank 0 gathers");
            });
            let plan = plan_2d(src_desc, dst_desc);
            let out = redistribute_2d(&merged, &plan, Some(&a)).expect("parent stays in grid");
            let grid = GridContext::new(&merged, 2, 2);
            let full = out.gather(&grid);
            if merged.rank() == 0 {
                let full = full.unwrap();
                for i in 0..16 {
                    for j in 0..16 {
                        assert_eq!(full[i * 16 + j], (i * 100 + j) as f64);
                    }
                }
            }
        });
        h.join_ok();
        uni.join_spawned();
    }

    #[test]
    fn integer_payloads() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "ints", |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 4);
            let plan = plan_2d(s, d);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 8 + j) as u64);
            let out = redistribute_2d(&comm, &plan, Some(&src)).unwrap();
            for li in 0..out.local_rows() {
                let gi = d.local_to_global_row(li, out.myrow);
                for lj in 0..out.local_cols() {
                    let gj = d.local_to_global_col(lj, out.mycol);
                    assert_eq!(out.get_local(li, lj), (gi * 8 + gj) as u64);
                }
            }
        })
        .join_ok();
    }
}
