//! Naive redistribution baseline: one unscheduled burst.
//!
//! The paper's redistribution contribution is the *contention-free
//! communication schedule*. To quantify what that buys, this module builds
//! the obvious alternative — every process sends everything it owes every
//! destination at once, in a single step — and the contention-aware cost
//! evaluator ([`crate::cost::evaluate_2d_contended`]) prices the resulting
//! endpoint serialization. The data moved is identical; only the schedule
//! differs.

use std::collections::BTreeMap;

use reshape_blockcyclic::Descriptor;

use crate::plan1d::plan_1d;
use crate::plan2d::{Redist2d, Transfer2d};

/// Build a single-step "send everything at once" plan between two
/// descriptors. Carries exactly the same blocks as [`crate::plan_2d`], but
/// with no contention avoidance: each destination may be targeted by many
/// sources in the one step, and each source fires all its messages
/// back-to-back.
pub fn plan_naive_2d(src: Descriptor, dst: Descriptor) -> Redist2d {
    assert_eq!((src.m, src.n), (dst.m, dst.n), "global shape must match");
    assert_eq!((src.mb, src.nb), (dst.mb, dst.nb), "block sizes must match");
    let row_plan = plan_1d(src.m, src.mb, src.nprow, dst.nprow);
    let col_plan = plan_1d(src.n, src.nb, src.npcol, dst.npcol);
    // Merge all (row transfer × column transfer) products into one message
    // per (source process, destination process) pair.
    type Key = ((usize, usize), (usize, usize));
    let mut merged: BTreeMap<Key, Transfer2d> = BTreeMap::new();
    for rt in row_plan.steps.iter().flatten() {
        for ct in col_plan.steps.iter().flatten() {
            let key = ((rt.src, ct.src), (rt.dst, ct.dst));
            merged
                .entry(key)
                .and_modify(|t| {
                    // Same (src,dst) pair can appear for several block-row /
                    // block-column combinations; accumulate the index sets.
                    for &b in &rt.blocks {
                        if !t.row_blocks.contains(&b) {
                            t.row_blocks.push(b);
                        }
                    }
                    for &b in &ct.blocks {
                        if !t.col_blocks.contains(&b) {
                            t.col_blocks.push(b);
                        }
                    }
                })
                .or_insert_with(|| Transfer2d {
                    src: (rt.src, ct.src),
                    dst: (rt.dst, ct.dst),
                    row_blocks: rt.blocks.clone(),
                    col_blocks: ct.blocks.clone(),
                });
        }
    }
    let mut transfers: Vec<Transfer2d> = merged.into_values().collect();
    for t in &mut transfers {
        t.row_blocks.sort_unstable();
        t.col_blocks.sort_unstable();
    }
    Redist2d {
        src,
        dst,
        row_plan,
        col_plan,
        steps: vec![transfers],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{evaluate_2d, evaluate_2d_contended};
    use crate::plan2d::plan_2d;
    use reshape_mpisim::NetModel;

    /// The naive plan must carry exactly the same (row-block, col-block)
    /// universe as the scheduled plan.
    fn coverage(plan: &Redist2d) -> std::collections::BTreeSet<(usize, usize)> {
        let mut set = std::collections::BTreeSet::new();
        for t in plan.steps.iter().flatten() {
            for &rb in &t.row_blocks {
                for &cb in &t.col_blocks {
                    assert!(set.insert((rb, cb)), "block ({rb},{cb}) duplicated");
                }
            }
        }
        set
    }

    #[test]
    fn naive_covers_same_blocks_as_scheduled() {
        let src = Descriptor::square(60, 3, 2, 3);
        let dst = Descriptor::square(60, 3, 4, 5);
        let naive = plan_naive_2d(src, dst);
        let sched = plan_2d(src, dst);
        assert_eq!(coverage(&naive), coverage(&sched));
        assert_eq!(naive.steps.len(), 1, "naive is a single burst");
        assert_eq!(naive.network_bytes(8), sched.network_bytes(8));
    }

    #[test]
    fn hmm_pair_messages_are_coalesced() {
        // Between any (src,dst) process pair there is at most one message.
        let src = Descriptor::square(48, 2, 2, 2);
        let dst = Descriptor::square(48, 2, 3, 4);
        let naive = plan_naive_2d(src, dst);
        let mut seen = std::collections::BTreeSet::new();
        for t in &naive.steps[0] {
            assert!(seen.insert((t.src, t.dst)), "duplicate message {:?}->{:?}", t.src, t.dst);
        }
    }

    #[test]
    fn contention_makes_naive_slower_on_shrink() {
        // Shrinking is a fan-in: many sources burst at few destinations
        // simultaneously, and the unscheduled plan pays receiver incast
        // that the circulant schedule's per-step permutations avoid.
        let net = NetModel::gigabit_ethernet();
        let src = Descriptor::square(8000, 100, 4, 5);
        let dst = Descriptor::square(8000, 100, 2, 2);
        let sched = evaluate_2d_contended(&plan_2d(src, dst), 8, &net);
        let naive = evaluate_2d_contended(&plan_naive_2d(src, dst), 8, &net);
        assert!(
            naive.seconds > 1.5 * sched.seconds,
            "naive shrink {} should clearly exceed scheduled {}",
            naive.seconds,
            sched.seconds
        );
    }

    #[test]
    fn expansion_is_sender_bound_either_way() {
        // Growing is a fan-out: each source's own NIC is the bottleneck in
        // both plans, so scheduling buys little — an honest property of the
        // model worth pinning (the paper's shrink-for-queued-jobs path is
        // where the schedule's contention-freedom pays).
        let net = NetModel::gigabit_ethernet();
        let src = Descriptor::square(8000, 100, 2, 2);
        let dst = Descriptor::square(8000, 100, 4, 5);
        let sched = evaluate_2d_contended(&plan_2d(src, dst), 8, &net);
        let naive = evaluate_2d_contended(&plan_naive_2d(src, dst), 8, &net);
        let ratio = naive.seconds / sched.seconds;
        assert!(
            (0.4..1.6).contains(&ratio),
            "expansion should be roughly schedule-insensitive, ratio {ratio}"
        );
    }

    #[test]
    fn contended_evaluator_agrees_with_plain_on_permutation_schedules() {
        // For the contention-free schedule both evaluators must agree up to
        // the per-step fixed overheads.
        let net = NetModel::gigabit_ethernet();
        let src = Descriptor::square(4000, 100, 2, 2);
        let dst = Descriptor::square(4000, 100, 2, 4);
        let plan = plan_2d(src, dst);
        let plain = evaluate_2d(&plan, 8, &net).seconds;
        let contended = evaluate_2d_contended(&plan, 8, &net).seconds;
        let rel = (contended - plain).abs() / plain;
        assert!(rel < 0.25, "plain {plain} vs contended {contended}");
    }
}
