//! Transactional redistribution: survive a rank death *inside* the data
//! movement.
//!
//! The `try_*` wrappers in [`crate::fault`] only run a pre-flight liveness
//! scan: a rank that dies after the scan but before the last transfer still
//! strands the plain executor, which unpacks received payloads straight into
//! the destination panel. This module executes the same schedule with two
//! changes:
//!
//! 1. **Staged receives.** Incoming payloads are parked in shadow buffers
//!    next to their transfer records; nothing touches a destination panel
//!    until the whole plan has moved. The source panel is only ever read.
//! 2. **Fault-aware transport + commit vote.** Sends use
//!    [`Comm::try_send`], which fails deterministically when the
//!    destination's node carries a crash firing before the message would
//!    arrive (the mid-transfer death); receives use
//!    [`Comm::recv_or_failed`], which returns an error once the sender has
//!    actually died without sending. A rank that observes a failure keeps
//!    participating (so live peers never deadlock on it) but votes ABORT in
//!    a final all-to-all round. Only a rank that completed every transfer
//!    *and* collected an OK vote from every peer unpacks its staging area.
//!
//! On abort every survivor returns [`RedistAbort`] with its source panel
//! bit-for-bit intact — the caller still holds the old layout and can fall
//! back to it (ReSHAPE's shrink-to-survivors recovery does exactly that).
//!
//! The vote round gives *local* atomicity, not global agreement: if a rank
//! dies midway through casting its votes, a survivor that already received
//! its OK may commit while another aborts. The driver's recovery fence
//! resolves this — any death during the resize epoch is detected there and
//! all survivors discard the epoch's output, committed or not, so the
//! divergence is never observable above the driver.

use reshape_blockcyclic::DistMatrix;
use reshape_mpisim::{Comm, Pod};

use crate::exec::{pack, unpack};
use crate::fault::RedistAbort;
use crate::plan2d::{Redist2d, Transfer2d};

/// Tag range for the transactional executor's data steps (`base + step`),
/// disjoint from the plain executor's `8_000_000 + step` range so an aborted
/// epoch's stragglers can never match a later plain redistribution.
const TAG_TXN_BASE: u32 = 8_100_000;
/// Tag of the all-to-all commit vote round.
const TAG_TXN_VOTE: u32 = 8_199_000;

const VOTE_OK: u64 = 1;
const VOTE_ABORT: u64 = 0;

/// Execute `plan` transactionally. Same calling convention as
/// [`crate::redistribute_2d`]: ranks `0..P` supply their old panel, ranks
/// `0..Q` get the new one back, and a rank outside both grids passes `None`.
///
/// Returns `Err(RedistAbort)` — with `src` untouched and no destination
/// panel materialized — when any rank the plan involves died before or
/// during the movement, or when any peer voted to abort.
pub fn txn_redistribute_2d<T: Pod + Default>(
    comm: &Comm,
    plan: &Redist2d,
    src: Option<&DistMatrix<T>>,
) -> Result<Option<DistMatrix<T>>, RedistAbort> {
    let p = plan.src.nprow * plan.src.npcol;
    let q = plan.dst.nprow * plan.dst.npcol;
    let world = p.max(q);
    assert!(
        comm.size() >= world,
        "communicator ({}) smaller than the larger grid ({})",
        comm.size(),
        world
    );
    let me = comm.rank();
    let my_src = (me < p).then(|| (me / plan.src.npcol, me % plan.src.npcol));
    let my_dst = (me < q).then(|| (me / plan.dst.npcol, me % plan.dst.npcol));

    if let (Some((sr, sc)), Some(m)) = (my_src, src) {
        assert_eq!(m.desc, plan.src, "source matrix descriptor mismatch");
        assert_eq!((m.myrow, m.mycol), (sr, sc), "source matrix grid position mismatch");
    }
    if my_src.is_some() {
        assert!(src.is_some(), "rank {me} owns source data but supplied none");
    }

    // Shadow buffers: every payload this rank will eventually unpack, staged
    // beside its transfer record. Local moves are staged too, so an abort
    // after a partial step leaves no trace anywhere.
    let mut staged: Vec<(Transfer2d, Vec<T>)> = Vec::new();
    // First failure observed: the lowest-numbered implicated rank. A rank
    // that observes a failure keeps driving the remaining sends and receives
    // so its live peers make progress; it just remembers to vote ABORT.
    let mut dead: Option<usize> = None;

    let mut buf: Vec<T> = Vec::new();
    for (t, step) in plan.steps.iter().enumerate() {
        let tag = TAG_TXN_BASE + t as u32;
        if let (Some(sc), Some(m)) = (my_src, src) {
            for tr in step.iter().filter(|tr| tr.src == sc) {
                pack(plan, tr, m, &mut buf);
                let to = plan.dst_rank(tr.dst);
                if to == me {
                    staged.push((tr.clone(), buf.clone()));
                } else if comm.try_send(to, tag, &buf).is_err() {
                    dead.get_or_insert(to);
                }
            }
        }
        if let Some(dc) = my_dst {
            for tr in step.iter().filter(|tr| tr.dst == dc) {
                let from = plan.src_rank(tr.src);
                if from == me {
                    continue; // staged on the send side above
                }
                match comm.recv_or_failed::<T>(from, tag) {
                    Ok(payload) => staged.push((tr.clone(), payload)),
                    Err(()) => {
                        dead.get_or_insert(from);
                    }
                }
            }
        }
    }

    // Commit vote: every rank in the world tells every other whether its own
    // transfers all completed. A dead peer counts as an ABORT vote.
    let my_vote = if dead.is_none() { VOTE_OK } else { VOTE_ABORT };
    for peer in (0..world).filter(|&r| r != me) {
        let _ = comm.try_send(peer, TAG_TXN_VOTE, &[my_vote]);
    }
    let mut commit = dead.is_none();
    for peer in (0..world).filter(|&r| r != me) {
        match comm.recv_or_failed::<u64>(peer, TAG_TXN_VOTE) {
            Ok(v) if v.first() == Some(&VOTE_OK) => {}
            Ok(_) => commit = false,
            Err(()) => {
                dead.get_or_insert(peer);
                commit = false;
            }
        }
    }

    if !commit {
        reshape_telemetry::incr("redist.txn_aborts", 1);
        // The staging area is dropped unread; `src` was never written.
        return Err(RedistAbort {
            dead_rank: dead.unwrap_or(me),
        });
    }

    reshape_telemetry::incr("redist.txn_commits", 1);
    reshape_telemetry::incr("redist.executions", 1);
    let mut out = my_dst.map(|(dr, dc)| DistMatrix::<T>::new(plan.dst, dr, dc));
    if let Some(m) = out.as_mut() {
        for (tr, payload) in &staged {
            unpack(plan, tr, payload, m);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::redistribute_2d;
    use crate::plan2d::plan_2d;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, NodeId, Universe};

    /// Keep survivors registered until everyone has finished asserting, so
    /// none of them looks dead to a peer still mid-check.
    fn survivor_sync(comm: &reshape_mpisim::Comm, survivors: &[usize]) {
        const TAG_SYNC: u32 = 7_700_000;
        let me = comm.rank();
        let root = survivors[0];
        let mut buf: Vec<u64> = Vec::new();
        if me == root {
            for &r in &survivors[1..] {
                comm.recv_into(r, TAG_SYNC, &mut buf);
            }
            for &r in &survivors[1..] {
                comm.send(r, TAG_SYNC, &[1u64]);
            }
        } else {
            comm.send(root, TAG_SYNC, &[me as u64]);
            comm.recv_into(root, TAG_SYNC, &mut buf);
        }
    }

    /// With every rank alive the transaction commits and the result is
    /// bitwise-identical to the plain executor's.
    #[test]
    fn commit_matches_plain_executor() {
        let uni = Universe::new(6, 1, NetModel::ideal());
        uni.launch(6, None, "txn-commit", |comm| {
            let s = Descriptor::new(17, 23, 3, 2, 2, 2);
            let d = Descriptor::new(17, 23, 3, 2, 2, 3);
            let plan = plan_2d(s, d);
            let me = comm.rank();
            let src = (me < 4).then(|| {
                DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 7919 + j) as f64)
            });
            let txn = txn_redistribute_2d(&comm, &plan, src.as_ref()).expect("all alive");
            let plain = redistribute_2d(&comm, &plan, src.as_ref());
            match (txn, plain) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.local_rows(), b.local_rows());
                    assert_eq!(a.local_cols(), b.local_cols());
                    for li in 0..a.local_rows() {
                        for lj in 0..a.local_cols() {
                            assert_eq!(a.get_local(li, lj).to_bits(), b.get_local(li, lj).to_bits());
                        }
                    }
                }
                (None, None) => {}
                _ => panic!("txn and plain disagree on grid membership"),
            }
        })
        .join_ok();
    }

    /// A rank that crashes *during* the movement (not caught by any
    /// pre-flight) makes every survivor abort with its source panel intact.
    #[test]
    fn mid_redistribution_death_rolls_back() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        // Rank 3's node dies the moment it touches the communicator: its
        // first try_send/recv checkpoint panics, mid-plan.
        uni.inject_node_crash(NodeId(3), 0.0);
        uni.launch(4, None, "txn-death", |comm| {
            let s = Descriptor::square(12, 2, 2, 2);
            let d = Descriptor::square(12, 2, 1, 2);
            let plan = plan_2d(s, d);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 31 + j) as f64);
            let before: Vec<u64> = (0..src.local_rows() * src.local_cols())
                .map(|k| src.get_local(k / src.local_cols(), k % src.local_cols()).to_bits())
                .collect();
            let res = txn_redistribute_2d(&comm, &plan, Some(&src));
            if me == 3 {
                unreachable!("rank 3 crashes inside the executor");
            }
            res.expect_err("death mid-redistribution must abort the transaction");
            let after: Vec<u64> = (0..src.local_rows() * src.local_cols())
                .map(|k| src.get_local(k / src.local_cols(), k % src.local_cols()).to_bits())
                .collect();
            assert_eq!(before, after, "abort must leave the old layout bitwise intact");
            survivor_sync(&comm, &[0, 1, 2]);
        })
        .join();
    }

    /// A sender that dies after delivering part of its traffic still aborts
    /// the epoch: the staged payloads are discarded, never unpacked.
    #[test]
    fn late_death_discards_staged_payloads() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        // Dies at t=0.5: rank 3 participates in early steps (ideal network
        // charges no virtual time), then an explicit advance kills it before
        // the vote round.
        uni.inject_node_crash(NodeId(3), 0.5);
        uni.launch(4, None, "txn-late", |comm| {
            let s = Descriptor::square(12, 2, 2, 2);
            let d = Descriptor::square(12, 2, 2, 1); // shrink: rank 3 is a sender
            let plan = plan_2d(s, d);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 13 + j) as f64);
            if me == 3 {
                comm.advance(1.0); // walks into the crash before the plan runs out
                unreachable!("rank 3 crashes on the advance");
            }
            txn_redistribute_2d(&comm, &plan, Some(&src))
                .expect_err("survivors must abort once rank 3 dies");
            survivor_sync(&comm, &[0, 1, 2]);
        })
        .join();
    }
}
