//! Scheduled general 2-D redistribution: both block sizes *and* the process
//! grid may change, and the communication is still organized into
//! contention-free steps.
//!
//! The checkerboard construction of [`crate::plan_2d`] carries over: the
//! row and column dimensions redistribute independently with the general
//! 1-D planner ([`crate::plan_general_1d`], König-colored), and the 2-D
//! schedule is their cross product — a (row matching) × (column matching)
//! product step is a matching on grid processes, so no endpoint ever
//! handles two messages in a step. Step count is Δ_row · Δ_col; unlike the
//! 1-D case this product is not always the global optimum, but it
//! preserves the contention-freedom that matters.
//!
//! Compared with [`crate::redistribute_general`] (single-burst element
//! binning), this pays the same bytes in scheduled, incast-free steps.

use reshape_blockcyclic::{g2l, Descriptor, DistMatrix};
use reshape_mpisim::{Comm, Pod};

use crate::general1d::{plan_general_1d, GeneralPlan1d};

const TAG_GENERAL2D_BASE: u32 = 8_400_000;

/// One coalesced 2-D message: every element whose global row lies in a
/// `row_runs` run and whose global column lies in a `col_runs` run.
#[derive(Clone, Debug)]
pub struct GTransfer2d {
    pub src: (usize, usize),
    pub dst: (usize, usize),
    pub row_runs: Vec<(usize, usize)>,
    pub col_runs: Vec<(usize, usize)>,
}

impl GTransfer2d {
    pub fn elems(&self) -> usize {
        let r: usize = self.row_runs.iter().map(|&(_, l)| l).sum();
        let c: usize = self.col_runs.iter().map(|&(_, l)| l).sum();
        r * c
    }
}

/// A general 2-D plan between descriptors that agree only on the global
/// shape.
#[derive(Clone, Debug)]
pub struct GeneralPlan2d {
    pub src: Descriptor,
    pub dst: Descriptor,
    pub row_plan: GeneralPlan1d,
    pub col_plan: GeneralPlan1d,
    pub steps: Vec<Vec<GTransfer2d>>,
}

impl GeneralPlan2d {
    pub fn src_rank(&self, (r, c): (usize, usize)) -> usize {
        r * self.src.npcol + c
    }

    pub fn dst_rank(&self, (r, c): (usize, usize)) -> usize {
        r * self.dst.npcol + c
    }

    pub fn network_bytes(&self, elem_size: usize) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|t| self.src_rank(t.src) != self.dst_rank(t.dst))
            .map(|t| t.elems() * elem_size)
            .sum()
    }
}

/// Build the scheduled general 2-D plan. Only the global shape must match.
pub fn plan_general_2d(src: Descriptor, dst: Descriptor) -> GeneralPlan2d {
    assert_eq!((src.m, src.n), (dst.m, dst.n), "global shape must match");
    let row_plan = plan_general_1d(src.m, src.mb, src.nprow, dst.mb, dst.nprow);
    let col_plan = plan_general_1d(src.n, src.nb, src.npcol, dst.nb, dst.npcol);
    let mut steps = Vec::with_capacity(row_plan.steps.len() * col_plan.steps.len());
    for rstep in &row_plan.steps {
        for cstep in &col_plan.steps {
            let mut step = Vec::with_capacity(rstep.len() * cstep.len());
            for rt in rstep {
                for ct in cstep {
                    step.push(GTransfer2d {
                        src: (rt.src, ct.src),
                        dst: (rt.dst, ct.dst),
                        row_runs: rt.runs.clone(),
                        col_runs: ct.runs.clone(),
                    });
                }
            }
            if !step.is_empty() {
                steps.push(step);
            }
        }
    }
    GeneralPlan2d {
        src,
        dst,
        row_plan,
        col_plan,
        steps,
    }
}

/// Execute a general 2-D plan collectively over `comm` (old grid ranks
/// `0..P` row-major, new grid ranks `0..Q`).
pub fn redistribute_general_2d<T: Pod + Default>(
    comm: &Comm,
    plan: &GeneralPlan2d,
    src: Option<&DistMatrix<T>>,
) -> Option<DistMatrix<T>> {
    let p = plan.src.nprow * plan.src.npcol;
    let q = plan.dst.nprow * plan.dst.npcol;
    assert!(comm.size() >= p.max(q), "communicator too small");
    let me = comm.rank();
    let my_src = (me < p).then(|| (me / plan.src.npcol, me % plan.src.npcol));
    let my_dst = (me < q).then(|| (me / plan.dst.npcol, me % plan.dst.npcol));
    if let (Some((sr, sc)), Some(m)) = (my_src, src) {
        assert_eq!(m.desc, plan.src, "source descriptor mismatch");
        assert_eq!((m.myrow, m.mycol), (sr, sc), "source position mismatch");
    }
    if my_src.is_some() {
        assert!(src.is_some(), "source rank must supply its panel");
    }
    let mut out = my_dst.map(|(dr, dc)| DistMatrix::<T>::new(plan.dst, dr, dc));

    let mut buf: Vec<T> = Vec::new();
    for (t, step) in plan.steps.iter().enumerate() {
        let tag = TAG_GENERAL2D_BASE + t as u32;
        if let (Some(sc), Some(m)) = (my_src, src) {
            for tr in step.iter().filter(|tr| tr.src == sc) {
                pack(plan, tr, m, &mut buf);
                if plan.dst_rank(tr.dst) == me {
                    unpack(plan, tr, &buf, out.as_mut().expect("local move implies dest"));
                } else {
                    comm.send(plan.dst_rank(tr.dst), tag, &buf);
                }
            }
        }
        if let Some(dc) = my_dst {
            for tr in step.iter().filter(|tr| tr.dst == dc) {
                if plan.src_rank(tr.src) == me {
                    continue; // local move handled above
                }
                comm.recv_into(plan.src_rank(tr.src), tag, &mut buf);
                unpack(plan, tr, &buf, out.as_mut().expect("recv implies dest"));
            }
        }
    }
    out
}

fn pack<T: Pod + Default>(plan: &GeneralPlan2d, tr: &GTransfer2d, m: &DistMatrix<T>, buf: &mut Vec<T>) {
    buf.clear();
    let d = &plan.src;
    for &(ri, rl) in &tr.row_runs {
        for gi in ri..ri + rl {
            let (_, li) = g2l(gi, d.mb, d.nprow);
            for &(cj, cl) in &tr.col_runs {
                for gj in cj..cj + cl {
                    let (_, lj) = g2l(gj, d.nb, d.npcol);
                    buf.push(m.get_local(li, lj));
                }
            }
        }
    }
}

fn unpack<T: Pod + Default>(plan: &GeneralPlan2d, tr: &GTransfer2d, buf: &[T], m: &mut DistMatrix<T>) {
    let d = &plan.dst;
    let mut idx = 0;
    for &(ri, rl) in &tr.row_runs {
        for gi in ri..ri + rl {
            let (_, li) = g2l(gi, d.mb, d.nprow);
            for &(cj, cl) in &tr.col_runs {
                for gj in cj..cj + cl {
                    let (_, lj) = g2l(gj, d.nb, d.npcol);
                    m.set_local(li, lj, buf[idx]);
                    idx += 1;
                }
            }
        }
    }
    assert_eq!(idx, buf.len(), "payload length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reshape_mpisim::{NetModel, Universe};
    use std::collections::HashSet;

    fn check_steps_are_matchings(plan: &GeneralPlan2d) {
        for step in &plan.steps {
            let mut s = HashSet::new();
            let mut d = HashSet::new();
            for t in step {
                assert!(s.insert(t.src), "grid source sends twice in a step");
                assert!(d.insert(t.dst), "grid dest receives twice in a step");
            }
        }
    }

    fn round_trip(
        m: usize,
        n: usize,
        sb: (usize, usize),
        db: (usize, usize),
        sg: (usize, usize),
        dg: (usize, usize),
    ) {
        let p = sg.0 * sg.1;
        let q = dg.0 * dg.1;
        let ranks = p.max(q);
        Universe::new(ranks, 1, NetModel::ideal())
            .launch(ranks, None, "g2d", move |comm| {
                let src_d = Descriptor::new(m, n, sb.0, sb.1, sg.0, sg.1);
                let dst_d = Descriptor::new(m, n, db.0, db.1, dg.0, dg.1);
                let plan = plan_general_2d(src_d, dst_d);
                check_steps_are_matchings(&plan);
                let me = comm.rank();
                let src = (me < p).then(|| {
                    DistMatrix::from_fn(src_d, me / sg.1, me % sg.1, |i, j| {
                        (i * 4099 + j) as f64
                    })
                });
                let out = redistribute_general_2d(&comm, &plan, src.as_ref());
                if me < q {
                    let out = out.expect("destination rank gets a panel");
                    for li in 0..out.local_rows() {
                        let gi = dst_d.local_to_global_row(li, out.myrow);
                        for lj in 0..out.local_cols() {
                            let gj = dst_d.local_to_global_col(lj, out.mycol);
                            assert_eq!(out.get_local(li, lj), (gi * 4099 + gj) as f64);
                        }
                    }
                } else {
                    assert!(out.is_none());
                }
            })
            .join_ok();
    }

    #[test]
    fn reblock_and_regrid_together() {
        round_trip(20, 24, (2, 3), (5, 4), (2, 2), (3, 2));
    }

    #[test]
    fn pure_reblocking_on_fixed_grid() {
        round_trip(16, 16, (4, 4), (2, 2), (2, 2), (2, 2));
    }

    #[test]
    fn expansion_with_block_growth() {
        round_trip(24, 24, (2, 2), (6, 3), (1, 2), (2, 3));
    }

    #[test]
    fn matches_fixed_plan_bytes_when_blocks_unchanged() {
        let src = Descriptor::square(48, 4, 2, 2);
        let dst = Descriptor::square(48, 4, 2, 4);
        let general = plan_general_2d(src, dst);
        let fixed = crate::plan_2d(src, dst);
        assert_eq!(general.network_bytes(8), fixed.network_bytes(8));
    }

    #[test]
    fn agrees_with_element_binning_general() {
        // Two independent implementations of the same move must agree.
        let (m, n) = (21, 18);
        Universe::new(6, 1, NetModel::ideal())
            .launch(6, None, "agree-general", move |comm| {
                let src_d = Descriptor::new(m, n, 3, 2, 2, 3);
                let dst_d = Descriptor::new(m, n, 4, 5, 3, 2);
                let me = comm.rank();
                let src = DistMatrix::from_fn(src_d, me / 3, me % 3, |i, j| (i * 77 + j) as f64);
                let a = redistribute_general_2d(&comm, &plan_general_2d(src_d, dst_d), Some(&src));
                let b = crate::redistribute_general(&comm, src_d, dst_d, Some(&src));
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(x.local_data(), y.local_data()),
                    (None, None) => {}
                    _ => panic!("presence mismatch on rank {me}"),
                }
            })
            .join_ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn random_general_2d_layouts_preserve_data(
            m in 1usize..28,
            n in 1usize..28,
            smb in 1usize..5,
            snb in 1usize..5,
            dmb in 1usize..5,
            dnb in 1usize..5,
            sgr in 1usize..4,
            sgc in 1usize..3,
            dgr in 1usize..4,
            dgc in 1usize..3,
        ) {
            round_trip(m, n, (smb, snb), (dmb, dnb), (sgr, sgc), (dgr, dgc));
        }
    }
}
