//! # reshape-redist — contention-free block-cyclic redistribution
//!
//! The heart of ReSHAPE's resizing library: when an application expands or
//! shrinks, its globally distributed block-cyclic arrays must move from a
//! `Pr × Pc` process grid to a `Qr × Qc` grid. The paper extends the
//! table-based framework of Park, Prasanna & Raghavendra (IEEE TPDS 1999)
//! from 1-D to 2-D ("checkerboard") topologies, computing a **generalized
//! circulant communication schedule** in which every step is a partial
//! permutation — no process sends or receives more than one message per
//! step, so steps are free of link contention.
//!
//! This crate provides:
//!
//! * [`plan_1d`] / [`Redist1d`] — the 1-D schedule for an `n`-element
//!   block-cyclic array moving from `p` to `q` processes;
//! * [`plan_2d`] / [`Redist2d`] — the checkerboard extension, the cross
//!   product of independent row and column 1-D schedules;
//! * [`redistribute_2d`] — an executor that moves a real
//!   [`DistMatrix`](reshape_blockcyclic::DistMatrix) across grids over a
//!   merged communicator (the paper uses MPI persistent requests per step;
//!   sends here are buffered, which is semantically identical);
//! * [`checkpoint`] — the file-based checkpoint/restart baseline the paper
//!   compares against (all data funnelled through one node);
//! * [`cost`] — an analytic evaluator turning a schedule plus a
//!   [`NetModel`](reshape_mpisim::NetModel) into seconds of virtual time,
//!   used to regenerate Figure 2(b) and by the cluster simulator.

pub mod checkpoint;
pub mod cost;
mod exec;
mod exec1d;
mod fault;
mod general;
mod general1d;
mod general2d;
mod naive;
mod plan1d;
mod plan2d;
mod txn;

pub use checkpoint::{checkpoint_cost, checkpoint_redistribute, CheckpointParams};
pub use cost::{evaluate_1d, evaluate_2d, evaluate_2d_contended, RedistCost, PACK_BANDWIDTH};
pub use exec::redistribute_2d;
pub use exec1d::redistribute_1d;
pub use fault::{
    try_checkpoint_redistribute, try_redistribute_1d, try_redistribute_2d,
    try_redistribute_general_2d, RedistAbort,
};
pub use general::redistribute_general;
pub use general1d::{
    evaluate_general_1d, plan_general_1d, redistribute_general_1d, GTransfer, GeneralPlan1d,
};
pub use general2d::{plan_general_2d, redistribute_general_2d, GTransfer2d, GeneralPlan2d};
pub use naive::plan_naive_2d;
pub use plan1d::{plan_1d, Redist1d, Transfer1d};
pub use plan2d::{plan_2d, Redist2d, Transfer2d};
pub use txn::txn_redistribute_2d;
