//! Fault-aware redistribution entry points.
//!
//! Redistribution is a collective over the merged communicator; if any rank
//! that the plan involves has died (node crash), the blocking sends/receives
//! inside the executors would wedge or panic mid-transfer, leaving the array
//! partially moved. The `try_redistribute_*` wrappers here run a pre-flight
//! liveness check over every rank the plan touches and abort *before any
//! element moves*, so the old layout stays intact and the scheduler can fall
//! back to the previous configuration.
//!
//! The check is local per rank but deterministic: every surviving rank scans
//! the same rank range against the same router state, so either all abort
//! with the same [`RedistAbort`] or all proceed.

use std::fmt;
use std::path::Path;

use reshape_blockcyclic::{Descriptor, DistMatrix, DistVector};
use reshape_mpisim::{Comm, Pod};

use crate::checkpoint::{checkpoint_redistribute, CheckpointParams};
use crate::exec::redistribute_2d;
use crate::exec1d::redistribute_1d;
use crate::general2d::{redistribute_general_2d, GeneralPlan2d};
use crate::plan1d::Redist1d;
use crate::plan2d::Redist2d;

/// A redistribution was aborted before moving any data because a rank it
/// needed is no longer alive. The source layout is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedistAbort {
    /// Lowest dead rank found by the pre-flight scan.
    pub dead_rank: usize,
}

impl fmt::Display for RedistAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "redistribution aborted: rank {} is dead", self.dead_rank)
    }
}

impl std::error::Error for RedistAbort {}

/// Scan ranks `0..world` (clamped to the communicator) and abort if any has
/// terminated. `world` is the larger of the two layouts, i.e. every rank the
/// schedule could name as a source or destination.
pub(crate) fn abort_if_dead(comm: &Comm, world: usize) -> Result<(), RedistAbort> {
    for rank in 0..world.min(comm.size()) {
        if !comm.rank_alive(rank) {
            reshape_telemetry::incr("redist.aborts", 1);
            return Err(RedistAbort { dead_rank: rank });
        }
    }
    Ok(())
}

/// Fault-checked [`redistribute_2d`]: aborts cleanly (source intact) when a
/// rank in either grid is dead.
pub fn try_redistribute_2d<T: Pod + Default>(
    comm: &Comm,
    plan: &Redist2d,
    src: Option<&DistMatrix<T>>,
) -> Result<Option<DistMatrix<T>>, RedistAbort> {
    let world = (plan.src.nprow * plan.src.npcol).max(plan.dst.nprow * plan.dst.npcol);
    abort_if_dead(comm, world)?;
    Ok(redistribute_2d(comm, plan, src))
}

/// Fault-checked [`redistribute_1d`].
pub fn try_redistribute_1d<T: Pod + Default>(
    comm: &Comm,
    plan: &Redist1d,
    src: Option<&DistVector<T>>,
) -> Result<Option<DistVector<T>>, RedistAbort> {
    abort_if_dead(comm, plan.p.max(plan.q))?;
    Ok(redistribute_1d(comm, plan, src))
}

/// Fault-checked [`redistribute_general_2d`].
pub fn try_redistribute_general_2d<T: Pod + Default>(
    comm: &Comm,
    plan: &GeneralPlan2d,
    src: Option<&DistMatrix<T>>,
) -> Result<Option<DistMatrix<T>>, RedistAbort> {
    let world = (plan.src.nprow * plan.src.npcol).max(plan.dst.nprow * plan.dst.npcol);
    abort_if_dead(comm, world)?;
    Ok(redistribute_general_2d(comm, plan, src))
}

/// Fault-checked [`checkpoint_redistribute`]. The checkpoint path funnels
/// everything through rank 0, but every rank in either layout still
/// participates, so the same liveness scan applies.
#[allow(clippy::too_many_arguments)]
pub fn try_checkpoint_redistribute<T: Pod + Default>(
    comm: &Comm,
    src_desc: Descriptor,
    dst_desc: Descriptor,
    src: Option<&DistMatrix<T>>,
    params: &CheckpointParams,
    file: Option<&Path>,
) -> Result<Option<DistMatrix<T>>, RedistAbort> {
    let p = src_desc.nprow * src_desc.npcol;
    let q = dst_desc.nprow * dst_desc.npcol;
    if let Err(abort) = abort_if_dead(comm, p.max(q)) {
        // A stale checkpoint from an earlier resize must not outlive the
        // abort: a later attempt would otherwise find (or clobber) it.
        // Every surviving rank may try; removal is idempotent.
        if let Some(path) = file {
            let _ = std::fs::remove_file(path);
        }
        return Err(abort);
    }
    Ok(checkpoint_redistribute(comm, src_desc, dst_desc, src, params, file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan2d::plan_2d;
    use reshape_mpisim::{NetModel, Universe};

    /// Kill one of four ranks, then assert every survivor's pre-flight
    /// aborts with the dead rank identified and the source panel untouched.
    #[test]
    fn dead_rank_aborts_before_moving_data() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "abort", |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 4);
            let plan = plan_2d(s, d);
            let me = comm.rank();
            if me == 3 {
                return; // rank 3 terminates; its mailbox is reaped
            }
            // Ranks learn of the death at their own pace; poll until the
            // router reflects it so the test is deterministic.
            while comm.rank_alive(3) {
                comm.advance(0.001);
            }
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 11 + j) as f64);
            let before: Vec<f64> = (0..src.local_rows() * src.local_cols())
                .map(|k| src.get_local(k / src.local_cols(), k % src.local_cols()))
                .collect();
            let err = try_redistribute_2d(&comm, &plan, Some(&src))
                .expect_err("dead rank must abort the redistribution");
            assert_eq!(err.dead_rank, 3);
            let after: Vec<f64> = (0..src.local_rows() * src.local_cols())
                .map(|k| src.get_local(k / src.local_cols(), k % src.local_cols()))
                .collect();
            assert_eq!(before, after, "abort must leave the old layout intact");
            // Keep every survivor registered until all have finished their
            // pre-flight: a rank that returned early would itself look dead.
            const TAG_SYNC: u32 = 7_700_000;
            let mut buf: Vec<u64> = Vec::new();
            if me == 0 {
                comm.recv_into(1, TAG_SYNC, &mut buf);
                comm.recv_into(2, TAG_SYNC, &mut buf);
                comm.send(1, TAG_SYNC, &[1u64]);
                comm.send(2, TAG_SYNC, &[1u64]);
            } else {
                comm.send(0, TAG_SYNC, &[me as u64]);
                comm.recv_into(0, TAG_SYNC, &mut buf);
            }
        })
        .join_ok();
    }

    /// An aborted checkpoint redistribution must not leave (or preserve) a
    /// checkpoint file: a stale file would shadow the next resize's data.
    #[test]
    fn aborted_checkpoint_removes_stale_file() {
        let tmp = std::env::temp_dir().join(format!("reshape-ckpt-abort-{}.bin", std::process::id()));
        std::fs::write(&tmp, b"stale checkpoint from a previous resize").unwrap();
        let uni = Universe::new(4, 1, NetModel::ideal());
        let path = tmp.clone();
        uni.launch(4, None, "ckpt-abort", move |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 2);
            let me = comm.rank();
            if me == 3 {
                return; // dies before the pre-flight
            }
            while comm.rank_alive(3) {
                comm.advance(0.001);
            }
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i + j) as f64);
            let err = try_checkpoint_redistribute(
                &comm,
                s,
                d,
                Some(&src),
                &CheckpointParams::default(),
                Some(&path),
            )
            .expect_err("dead rank must abort");
            assert_eq!(err.dead_rank, 3);
            const TAG_SYNC: u32 = 7_700_000;
            let mut buf: Vec<u64> = Vec::new();
            if me == 0 {
                comm.recv_into(1, TAG_SYNC, &mut buf);
                comm.recv_into(2, TAG_SYNC, &mut buf);
                comm.send(1, TAG_SYNC, &[1u64]);
                comm.send(2, TAG_SYNC, &[1u64]);
            } else {
                comm.send(0, TAG_SYNC, &[me as u64]);
                comm.recv_into(0, TAG_SYNC, &mut buf);
            }
        })
        .join_ok();
        assert!(!tmp.exists(), "abort must clean up the checkpoint file");
    }

    /// With everyone alive the wrapper is a transparent pass-through.
    #[test]
    fn all_alive_passes_through() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "pass", |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 4);
            let plan = plan_2d(s, d);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 8 + j) as u64);
            let out = try_redistribute_2d(&comm, &plan, Some(&src))
                .expect("no dead ranks")
                .expect("in destination grid");
            for li in 0..out.local_rows() {
                let gi = d.local_to_global_row(li, out.myrow);
                for lj in 0..out.local_cols() {
                    let gj = d.local_to_global_col(lj, out.mycol);
                    assert_eq!(out.get_local(li, lj), (gi * 8 + gj) as u64);
                }
            }
            // Barrier so no rank deregisters while a peer's pre-flight is
            // still scanning liveness.
            comm.barrier();
        })
        .join_ok();
    }
}
