//! 1-D schedule executor: moves a [`DistVector`] between process counts
//! using the contention-free 1-D schedule — the "1-D (row or column
//! format)" redistribution path of the paper.

use reshape_blockcyclic::DistVector;
use reshape_mpisim::{Comm, Pod};

use crate::plan1d::Redist1d;

const TAG_REDIST1D_BASE: u32 = 8_200_000;

/// Execute a 1-D plan collectively over `comm` (old layout on ranks
/// `0..p`, new on ranks `0..q`). Source ranks pass their part; ranks in the
/// destination layout get the new part back.
pub fn redistribute_1d<T: Pod + Default>(
    comm: &Comm,
    plan: &Redist1d,
    src: Option<&DistVector<T>>,
) -> Option<DistVector<T>> {
    assert!(
        comm.size() >= plan.p.max(plan.q),
        "communicator smaller than the larger layout"
    );
    let me = comm.rank();
    if me < plan.p {
        let v = src.expect("source rank must supply its part");
        assert_eq!((v.n, v.nb, v.nprocs, v.iproc), (plan.n, plan.b, plan.p, me));
    }
    let mut out = (me < plan.q).then(|| DistVector::<T>::new(plan.n, plan.b, me, plan.q));

    let mut buf: Vec<T> = Vec::new();
    for (t, step) in plan.steps.iter().enumerate() {
        let tag = TAG_REDIST1D_BASE + t as u32;
        if let Some(v) = src.filter(|_| me < plan.p) {
            for tr in step.iter().filter(|tr| tr.src == me) {
                // Pack the blocks in ascending global order.
                buf.clear();
                for &k in &tr.blocks {
                    let start = k * plan.b;
                    let len = plan.block_len(k);
                    // Local offset of block k on the source: block index
                    // k/p, so local start = (k/p)*b.
                    let l0 = (k / plan.p) * plan.b;
                    debug_assert_eq!(v.global_index(l0), start);
                    for off in 0..len {
                        buf.push(v.get_local(l0 + off));
                    }
                }
                if tr.dst == me {
                    // Local copy straight into the output part.
                    unpack(plan, &tr.blocks, &buf, out.as_mut().expect("dst"));
                } else {
                    comm.send(tr.dst, tag, &buf);
                }
            }
        }
        if let Some(part) = out.as_mut() {
            for tr in step.iter().filter(|tr| tr.dst == me && tr.src != me) {
                comm.recv_into(tr.src, tag, &mut buf);
                unpack(plan, &tr.blocks, &buf, part);
            }
        }
    }
    out
}

fn unpack<T: Pod + Default>(plan: &Redist1d, blocks: &[usize], buf: &[T], part: &mut DistVector<T>) {
    let mut idx = 0;
    for &k in blocks {
        let len = plan.block_len(k);
        let l0 = (k / plan.q) * plan.b;
        for off in 0..len {
            part.set_local(l0 + off, buf[idx]);
            idx += 1;
        }
    }
    assert_eq!(idx, buf.len(), "payload length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan1d::plan_1d;
    use proptest::prelude::*;
    use reshape_mpisim::{NetModel, Universe};

    fn round_trip(n: usize, b: usize, p: usize, q: usize) {
        let ranks = p.max(q);
        Universe::new(ranks, 1, NetModel::ideal())
            .launch(ranks, None, "r1d", move |comm| {
                let plan = plan_1d(n, b, p, q);
                let me = comm.rank();
                let src = (me < p).then(|| {
                    DistVector::from_fn(n, b, me, p, |g| (g * 31 + 7) as f64)
                });
                let out = redistribute_1d(&comm, &plan, src.as_ref());
                if me < q {
                    let out = out.expect("in destination layout");
                    for l in 0..out.local_len() {
                        let g = out.global_index(l);
                        assert_eq!(out.get_local(l), (g * 31 + 7) as f64, "element {g}");
                    }
                } else {
                    assert!(out.is_none());
                }
            })
            .join_ok();
    }

    #[test]
    fn expand_2_to_5() {
        round_trip(40, 2, 2, 5);
    }

    #[test]
    fn shrink_6_to_2() {
        round_trip(36, 3, 6, 2);
    }

    #[test]
    fn ragged_tail_block() {
        round_trip(17, 4, 3, 4);
    }

    #[test]
    fn identity_layout() {
        round_trip(24, 4, 3, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn random_1d_layouts_preserve_data(
            n in 1usize..200,
            b in 1usize..8,
            p in 1usize..6,
            q in 1usize..6,
        ) {
            round_trip(n, b, p, q);
        }
    }
}
