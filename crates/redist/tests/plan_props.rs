//! Property tests for the redistribution planners: every element of the
//! array is sent exactly once, to its true block-cyclic owner, and the
//! plan's total volume equals the matrix volume. These are the structural
//! guarantees the executors rely on — `unpack` trusts the plan to deliver
//! each destination cell exactly once.

use proptest::prelude::*;
use reshape_blockcyclic::Descriptor;
use reshape_redist::{plan_1d, plan_2d};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plan1d_sends_every_block_exactly_once_with_exact_volume(
        n in 1usize..400,
        b in 1usize..9,
        p in 1usize..9,
        q in 1usize..9,
    ) {
        let plan = plan_1d(n, b, p, q);
        let mut sent = vec![0usize; plan.nblocks()];
        let mut volume = 0usize;
        for step in &plan.steps {
            for tr in step {
                for &k in &tr.blocks {
                    prop_assert!(k < plan.nblocks(), "block {} out of range", k);
                    sent[k] += 1;
                    // Block-cyclic ownership: block k lives on k mod p and
                    // moves to k mod q.
                    prop_assert_eq!(tr.src, k % p, "block {} sent from non-owner", k);
                    prop_assert_eq!(tr.dst, k % q, "block {} sent to wrong owner", k);
                    volume += plan.block_len(k);
                }
            }
        }
        for (k, &c) in sent.iter().enumerate() {
            prop_assert_eq!(c, 1, "block {} sent {} times", k, c);
        }
        prop_assert_eq!(volume, n, "plan volume != array volume");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan2d_covers_every_block_pair_exactly_once_with_exact_volume(
        m in 1usize..40,
        n in 1usize..40,
        mb in 1usize..5,
        nb in 1usize..5,
        sr in 1usize..4,
        sc in 1usize..4,
        dr in 1usize..4,
        dc in 1usize..4,
    ) {
        let src = Descriptor::new(m, n, mb, nb, sr, sc);
        let dst = Descriptor::new(m, n, mb, nb, dr, dc);
        let plan = plan_2d(src, dst);
        let rblocks = m.div_ceil(mb);
        let cblocks = n.div_ceil(nb);
        let row_len = |rb: usize| (m - rb * mb).min(mb);
        let col_len = |cb: usize| (n - cb * nb).min(nb);
        let mut sent = vec![0usize; rblocks * cblocks];
        let mut volume = 0usize;
        for step in &plan.steps {
            for tr in step {
                let mut rows = 0usize;
                for &rb in &tr.row_blocks {
                    prop_assert!(rb < rblocks, "row block {} out of range", rb);
                    prop_assert_eq!(rb % sr, tr.src.0, "row block {} from non-owner row", rb);
                    prop_assert_eq!(rb % dr, tr.dst.0, "row block {} to wrong row", rb);
                    rows += row_len(rb);
                }
                let mut cols = 0usize;
                for &cb in &tr.col_blocks {
                    prop_assert!(cb < cblocks, "col block {} out of range", cb);
                    prop_assert_eq!(cb % sc, tr.src.1, "col block {} from non-owner col", cb);
                    prop_assert_eq!(cb % dc, tr.dst.1, "col block {} to wrong col", cb);
                    cols += col_len(cb);
                }
                for &rb in &tr.row_blocks {
                    for &cb in &tr.col_blocks {
                        sent[rb * cblocks + cb] += 1;
                    }
                }
                volume += rows * cols;
            }
        }
        for (i, &c) in sent.iter().enumerate() {
            prop_assert_eq!(
                c, 1,
                "block pair ({}, {}) sent {} times", i / cblocks, i % cblocks, c
            );
        }
        prop_assert_eq!(volume, m * n, "plan volume != matrix volume");
    }
}
