//! Pure block-cyclic index arithmetic (the `NUMROC` / `INDXG2L` /
//! `INDXL2G` family from ScaLAPACK TOOLS, with the distribution source
//! fixed at process 0).

/// Number of elements of a dimension of length `n`, distributed in blocks of
/// `nb` over `nprocs` processes, that land on process coordinate `iproc`.
///
/// Equivalent to ScaLAPACK's `NUMROC(n, nb, iproc, 0, nprocs)`.
///
/// ```
/// use reshape_blockcyclic::numroc;
/// // 10 elements in blocks of 4 over 2 processes: [4,4,2] -> p0 owns 6.
/// assert_eq!(numroc(10, 4, 0, 2), 6);
/// assert_eq!(numroc(10, 4, 1, 2), 4);
/// ```
pub fn numroc(n: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    assert!(nb > 0 && nprocs > 0 && iproc < nprocs);
    if n == 0 {
        return 0;
    }
    let nblocks = n.div_ceil(nb); // total blocks, last possibly partial
    let full_rounds = nblocks / nprocs;
    let extra = nblocks % nprocs;
    let my_blocks = full_rounds + usize::from(iproc < extra);
    let mut count = my_blocks * nb;
    // If this process owns the globally last block, trim the overhang.
    if my_blocks > 0 && (nblocks - 1) % nprocs == iproc {
        count -= nblocks * nb - n;
    }
    count
}

/// Process coordinate owning global index `g`.
pub fn owner(g: usize, nb: usize, nprocs: usize) -> usize {
    (g / nb) % nprocs
}

/// Map global index `g` to `(owner process, local index)`.
///
/// ```
/// use reshape_blockcyclic::{g2l, l2g};
/// let (proc, local) = g2l(7, 3, 2); // block 2 of size 3 -> process 0
/// assert_eq!((proc, local), (0, 4));
/// assert_eq!(l2g(local, 3, proc, 2), 7);
/// ```
pub fn g2l(g: usize, nb: usize, nprocs: usize) -> (usize, usize) {
    let block = g / nb;
    let proc = block % nprocs;
    let local = (block / nprocs) * nb + g % nb;
    (proc, local)
}

/// Map local index `l` on process `iproc` back to the global index.
pub fn l2g(l: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    assert!(iproc < nprocs);
    let local_block = l / nb;
    (local_block * nprocs + iproc) * nb + l % nb
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numroc_even_division() {
        // 12 elements, blocks of 2, 3 procs: each proc gets 2 blocks = 4.
        for p in 0..3 {
            assert_eq!(numroc(12, 2, p, 3), 4);
        }
    }

    #[test]
    fn numroc_partial_last_block() {
        // 10 elements, blocks of 4, 2 procs: blocks [4,4,2] -> p0: 4+2, p1: 4.
        assert_eq!(numroc(10, 4, 0, 2), 6);
        assert_eq!(numroc(10, 4, 1, 2), 4);
    }

    #[test]
    fn numroc_more_procs_than_blocks() {
        // 3 elements, block 2, 4 procs: blocks [2,1] on p0,p1; p2,p3 empty.
        assert_eq!(numroc(3, 2, 0, 4), 2);
        assert_eq!(numroc(3, 2, 1, 4), 1);
        assert_eq!(numroc(3, 2, 2, 4), 0);
        assert_eq!(numroc(3, 2, 3, 4), 0);
    }

    #[test]
    fn numroc_zero_length() {
        assert_eq!(numroc(0, 5, 0, 3), 0);
    }

    #[test]
    fn g2l_l2g_examples() {
        // n irrelevant for the maps; blocks of 3 over 2 procs.
        assert_eq!(g2l(0, 3, 2), (0, 0));
        assert_eq!(g2l(2, 3, 2), (0, 2));
        assert_eq!(g2l(3, 3, 2), (1, 0));
        assert_eq!(g2l(6, 3, 2), (0, 3));
        assert_eq!(l2g(3, 3, 0, 2), 6);
        assert_eq!(l2g(0, 3, 1, 2), 3);
    }

    proptest! {
        #[test]
        fn numroc_partitions_exactly(
            n in 0usize..3000,
            nb in 1usize..64,
            nprocs in 1usize..17,
        ) {
            let total: usize = (0..nprocs).map(|p| numroc(n, nb, p, nprocs)).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn g2l_then_l2g_round_trips(
            g in 0usize..100_000,
            nb in 1usize..64,
            nprocs in 1usize..17,
        ) {
            let (p, l) = g2l(g, nb, nprocs);
            prop_assert!(p < nprocs);
            prop_assert_eq!(l2g(l, nb, p, nprocs), g);
            prop_assert_eq!(owner(g, nb, nprocs), p);
        }

        #[test]
        fn local_indices_are_dense(
            n in 1usize..2000,
            nb in 1usize..32,
            nprocs in 1usize..9,
        ) {
            // Every local index in [0, numroc) is hit exactly once per proc.
            for p in 0..nprocs {
                let cnt = numroc(n, nb, p, nprocs);
                let mut seen = vec![false; cnt];
                for g in 0..n {
                    let (q, l) = g2l(g, nb, nprocs);
                    if q == p {
                        prop_assert!(l < cnt, "local index {} out of {} (g={})", l, cnt, g);
                        prop_assert!(!seen[l]);
                        seen[l] = true;
                    }
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }

        #[test]
        fn l2g_is_monotonic_per_proc(
            nb in 1usize..32,
            nprocs in 1usize..9,
            iproc_raw in 0usize..9,
        ) {
            let iproc = iproc_raw % nprocs;
            let mut prev = None;
            for l in 0..200 {
                let g = l2g(l, nb, iproc, nprocs);
                if let Some(p) = prev {
                    prop_assert!(g > p);
                }
                prev = Some(g);
            }
        }
    }
}
