//! # reshape-blockcyclic — ScaLAPACK-style 2-D block-cyclic distributions
//!
//! ReSHAPE targets "structured applications that have two-dimensional data
//! arrays distributed across a two-dimensional processor grid" in the
//! block-cyclic layout ScaLAPACK uses. This crate provides the index
//! arithmetic (`numroc`, global↔local maps, ownership) and a distributed
//! matrix container [`DistMatrix`] over a [`reshape_grid::GridContext`].
//!
//! All index math lives in pure functions so the redistribution planner
//! (crate `reshape-redist`) can reason about layouts without touching any
//! communicator, and so properties can be tested exhaustively.

use reshape_grid::GridContext;
use reshape_mpisim::Pod;

pub mod buddy;
pub mod index;
pub mod vector;

pub use buddy::{recover_matrix, BuddyStore};
pub use index::{g2l, l2g, numroc, owner};
pub use vector::DistVector;

/// Shape and distribution parameters of a 2-D block-cyclic matrix
/// (ScaLAPACK array-descriptor equivalent, with the source process fixed at
/// grid coordinate (0,0) as in the paper's experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Descriptor {
    /// Global rows.
    pub m: usize,
    /// Global columns.
    pub n: usize,
    /// Row block size.
    pub mb: usize,
    /// Column block size.
    pub nb: usize,
    /// Process-grid rows.
    pub nprow: usize,
    /// Process-grid columns.
    pub npcol: usize,
}

impl Descriptor {
    pub fn new(m: usize, n: usize, mb: usize, nb: usize, nprow: usize, npcol: usize) -> Self {
        assert!(mb > 0 && nb > 0, "block sizes must be positive");
        assert!(nprow > 0 && npcol > 0, "grid must be non-empty");
        Descriptor {
            m,
            n,
            mb,
            nb,
            nprow,
            npcol,
        }
    }

    /// A square matrix with square blocks.
    pub fn square(n: usize, nb: usize, nprow: usize, npcol: usize) -> Self {
        Self::new(n, n, nb, nb, nprow, npcol)
    }

    /// Rows stored locally by process row `prow`.
    pub fn local_rows(&self, prow: usize) -> usize {
        numroc(self.m, self.mb, prow, self.nprow)
    }

    /// Columns stored locally by process column `pcol`.
    pub fn local_cols(&self, pcol: usize) -> usize {
        numroc(self.n, self.nb, pcol, self.npcol)
    }

    /// Grid coordinates of the owner of global element `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> (usize, usize) {
        (owner(i, self.mb, self.nprow), owner(j, self.nb, self.npcol))
    }

    /// Map a global element to `((prow, pcol), (local row, local col))`.
    pub fn global_to_local(&self, i: usize, j: usize) -> ((usize, usize), (usize, usize)) {
        let (pr, li) = g2l(i, self.mb, self.nprow);
        let (pc, lj) = g2l(j, self.nb, self.npcol);
        ((pr, pc), (li, lj))
    }

    /// Global row index of local row `li` on process row `prow`.
    pub fn local_to_global_row(&self, li: usize, prow: usize) -> usize {
        l2g(li, self.mb, prow, self.nprow)
    }

    /// Global column index of local column `lj` on process column `pcol`.
    pub fn local_to_global_col(&self, lj: usize, pcol: usize) -> usize {
        l2g(lj, self.nb, pcol, self.npcol)
    }

    /// Total elements (sanity checks / cost models).
    pub fn elements(&self) -> usize {
        self.m * self.n
    }
}

/// The locally owned panel of a block-cyclic distributed matrix, stored
/// row-major.
///
/// ```
/// use reshape_blockcyclic::{Descriptor, DistMatrix};
/// // An 8x8 matrix in 2x2 blocks on a 2x2 grid: each rank holds 4x4.
/// let desc = Descriptor::square(8, 2, 2, 2);
/// let m = DistMatrix::from_fn(desc, 0, 1, |i, j| (i * 8 + j) as f64);
/// assert_eq!(m.local_rows(), 4);
/// assert_eq!(m.local_cols(), 4);
/// // Global element (0, 2) lives in block column 1 -> grid column 1.
/// assert_eq!(m.get_global(0, 2), Some(2.0));
/// assert_eq!(m.get_global(0, 0), None); // owned by grid column 0
/// ```
#[derive(Clone, Debug)]
pub struct DistMatrix<T> {
    pub desc: Descriptor,
    pub myrow: usize,
    pub mycol: usize,
    lrows: usize,
    lcols: usize,
    data: Vec<T>,
}

impl<T: Pod + Default> DistMatrix<T> {
    /// Zero-initialized local panel for grid position `(myrow, mycol)`.
    pub fn new(desc: Descriptor, myrow: usize, mycol: usize) -> Self {
        assert!(myrow < desc.nprow && mycol < desc.npcol, "position outside grid");
        let lrows = desc.local_rows(myrow);
        let lcols = desc.local_cols(mycol);
        reshape_telemetry::incr("blockcyclic.panels_built", 1);
        reshape_telemetry::incr("blockcyclic.panel_elems", (lrows * lcols) as u64);
        DistMatrix {
            desc,
            myrow,
            mycol,
            lrows,
            lcols,
            data: vec![T::default(); lrows * lcols],
        }
    }

    /// Fill from a function of the *global* indices — every rank evaluates
    /// `f` only on the elements it owns, so construction is embarrassingly
    /// parallel (how the paper's workloads initialize their matrices).
    pub fn from_fn(
        desc: Descriptor,
        myrow: usize,
        mycol: usize,
        f: impl Fn(usize, usize) -> T,
    ) -> Self {
        let mut m = Self::new(desc, myrow, mycol);
        for li in 0..m.lrows {
            let gi = desc.local_to_global_row(li, myrow);
            for lj in 0..m.lcols {
                let gj = desc.local_to_global_col(lj, mycol);
                m.data[li * m.lcols + lj] = f(gi, gj);
            }
        }
        m
    }

    /// Build for the caller's position on `grid`.
    pub fn on_grid(desc: Descriptor, grid: &GridContext) -> Self {
        assert_eq!(
            (desc.nprow, desc.npcol),
            (grid.nprow(), grid.npcol()),
            "descriptor grid shape must match the context"
        );
        Self::new(desc, grid.myrow(), grid.mycol())
    }

    pub fn local_rows(&self) -> usize {
        self.lrows
    }

    pub fn local_cols(&self) -> usize {
        self.lcols
    }

    pub fn local_data(&self) -> &[T] {
        &self.data
    }

    pub fn local_data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Replace the local panel wholesale (used by redistribution).
    pub fn set_local_data(&mut self, data: Vec<T>) {
        assert_eq!(data.len(), self.lrows * self.lcols, "panel size mismatch");
        self.data = data;
    }

    #[inline]
    pub fn get_local(&self, li: usize, lj: usize) -> T {
        self.data[li * self.lcols + lj]
    }

    #[inline]
    pub fn set_local(&mut self, li: usize, lj: usize, v: T) {
        self.data[li * self.lcols + lj] = v;
    }

    /// Copy out the locally owned block with *global block coordinates*
    /// `(bi, bj)` as a row-major `mb × nb` buffer. The caller must own it
    /// (i.e. `bi % nprow == myrow && bj % npcol == mycol`).
    pub fn get_block(&self, bi: usize, bj: usize) -> Vec<T> {
        let d = &self.desc;
        debug_assert_eq!(bi % d.nprow, self.myrow, "block row {bi} not owned");
        debug_assert_eq!(bj % d.npcol, self.mycol, "block col {bj} not owned");
        let l0 = (bi / d.nprow) * d.mb;
        let c0 = (bj / d.npcol) * d.nb;
        let mut out = Vec::with_capacity(d.mb * d.nb);
        for r in 0..d.mb {
            for c in 0..d.nb {
                out.push(self.get_local(l0 + r, c0 + c));
            }
        }
        out
    }

    /// Overwrite the locally owned block `(bi, bj)` from a row-major
    /// `mb × nb` buffer (inverse of [`DistMatrix::get_block`]).
    pub fn set_block(&mut self, bi: usize, bj: usize, blk: &[T]) {
        let d = self.desc;
        debug_assert_eq!(blk.len(), d.mb * d.nb, "block buffer size mismatch");
        let l0 = (bi / d.nprow) * d.mb;
        let c0 = (bj / d.npcol) * d.nb;
        for r in 0..d.mb {
            for c in 0..d.nb {
                self.set_local(l0 + r, c0 + c, blk[r * d.nb + c]);
            }
        }
    }

    /// Value of global element `(i, j)` if this rank owns it.
    pub fn get_global(&self, i: usize, j: usize) -> Option<T> {
        let ((pr, pc), (li, lj)) = self.desc.global_to_local(i, j);
        if (pr, pc) == (self.myrow, self.mycol) {
            Some(self.get_local(li, lj))
        } else {
            None
        }
    }

    /// Set global element `(i, j)` if owned; returns whether it was.
    pub fn set_global(&mut self, i: usize, j: usize, v: T) -> bool {
        let ((pr, pc), (li, lj)) = self.desc.global_to_local(i, j);
        if (pr, pc) == (self.myrow, self.mycol) {
            self.set_local(li, lj, v);
            true
        } else {
            false
        }
    }

    /// Gather the full matrix (row-major `m × n`) on grid rank 0.
    /// Collective over the grid; debug/verification use only.
    pub fn gather(&self, grid: &GridContext) -> Option<Vec<T>> {
        let comm = grid.comm();
        let parts = comm.gather(0, &self.data);
        parts.map(|parts| {
            let d = &self.desc;
            let mut full = vec![T::default(); d.m * d.n];
            for (rank, part) in parts.iter().enumerate() {
                let (pr, pc) = grid.pcoord(rank);
                let lr = d.local_rows(pr);
                let lc = d.local_cols(pc);
                assert_eq!(part.len(), lr * lc, "rank {rank} sent a wrong-sized panel");
                for li in 0..lr {
                    let gi = d.local_to_global_row(li, pr);
                    for lj in 0..lc {
                        let gj = d.local_to_global_col(lj, pc);
                        full[gi * d.n + gj] = part[li * lc + lj];
                    }
                }
            }
            full
        })
    }

    /// Scatter a replicated row-major `m × n` matrix from grid rank 0 into
    /// the distribution. Collective; debug/verification use only.
    pub fn scatter_from(desc: Descriptor, grid: &GridContext, full: Option<&[T]>) -> Self {
        let comm = grid.comm();
        let parts: Option<Vec<Vec<T>>> = if comm.rank() == 0 {
            let full = full.expect("root must supply the matrix");
            assert_eq!(full.len(), desc.m * desc.n, "matrix size mismatch");
            Some(
                (0..comm.size())
                    .map(|rank| {
                        let (pr, pc) = grid.pcoord(rank);
                        let lr = desc.local_rows(pr);
                        let lc = desc.local_cols(pc);
                        let mut part = Vec::with_capacity(lr * lc);
                        for li in 0..lr {
                            let gi = desc.local_to_global_row(li, pr);
                            for lj in 0..lc {
                                let gj = desc.local_to_global_col(lj, pc);
                                part.push(full[gi * desc.n + gj]);
                            }
                        }
                        part
                    })
                    .collect(),
            )
        } else {
            None
        };
        let mine = comm.scatter(0, parts.as_deref());
        let mut m = Self::new(desc, grid.myrow(), grid.mycol());
        m.set_local_data(mine);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_mpisim::{NetModel, Universe};

    #[test]
    fn descriptor_local_shapes_cover_matrix() {
        let d = Descriptor::new(10, 7, 3, 2, 2, 3);
        let rows: usize = (0..2).map(|p| d.local_rows(p)).sum();
        let cols: usize = (0..3).map(|p| d.local_cols(p)).sum();
        assert_eq!(rows, 10);
        assert_eq!(cols, 7);
    }

    #[test]
    fn from_fn_places_by_global_index() {
        let d = Descriptor::square(8, 2, 2, 2);
        for pr in 0..2 {
            for pc in 0..2 {
                let m = DistMatrix::from_fn(d, pr, pc, |i, j| (i * 100 + j) as f64);
                for li in 0..m.local_rows() {
                    for lj in 0..m.local_cols() {
                        let gi = d.local_to_global_row(li, pr);
                        let gj = d.local_to_global_col(lj, pc);
                        assert_eq!(m.get_local(li, lj), (gi * 100 + gj) as f64);
                        assert_eq!(m.get_global(gi, gj), Some((gi * 100 + gj) as f64));
                    }
                }
            }
        }
    }

    #[test]
    fn get_global_returns_none_for_foreign_elements() {
        let d = Descriptor::square(4, 1, 2, 2);
        let m = DistMatrix::<f64>::new(d, 0, 0);
        // (1,1) belongs to (1,1) under 1x1 blocks on a 2x2 grid.
        assert!(m.get_global(1, 1).is_none());
        assert!(m.get_global(0, 0).is_some());
    }

    #[test]
    fn gather_reconstructs_global_matrix() {
        let uni = Universe::new(6, 1, NetModel::ideal());
        uni.launch(6, None, "gather", |comm| {
            let grid = GridContext::new(&comm, 2, 3);
            let d = Descriptor::new(9, 11, 2, 3, 2, 3);
            let m = DistMatrix::from_fn(d, grid.myrow(), grid.mycol(), |i, j| {
                (i * 1000 + j) as f64
            });
            let full = m.gather(&grid);
            if comm.rank() == 0 {
                let full = full.unwrap();
                for i in 0..9 {
                    for j in 0..11 {
                        assert_eq!(full[i * 11 + j], (i * 1000 + j) as f64);
                    }
                }
            } else {
                assert!(full.is_none());
            }
        })
        .join_ok();
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "scatter", |comm| {
            let grid = GridContext::new(&comm, 2, 2);
            let d = Descriptor::new(5, 6, 2, 2, 2, 2);
            let full: Option<Vec<f64>> = if comm.rank() == 0 {
                Some((0..30).map(|x| x as f64).collect())
            } else {
                None
            };
            let m = DistMatrix::scatter_from(d, &grid, full.as_deref());
            let back = m.gather(&grid);
            if comm.rank() == 0 {
                assert_eq!(back.unwrap(), (0..30).map(|x| x as f64).collect::<Vec<_>>());
            }
        })
        .join_ok();
    }

    #[test]
    #[should_panic(expected = "panel size mismatch")]
    fn set_local_data_validates_size() {
        let d = Descriptor::square(4, 2, 2, 2);
        let mut m = DistMatrix::<f64>::new(d, 0, 0);
        m.set_local_data(vec![0.0; 3]);
    }
}
