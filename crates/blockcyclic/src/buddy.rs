//! In-memory buddy redundancy for block-cyclic panels.
//!
//! Checkpoint/restart (the `reshape-redist` baseline) funnels the whole
//! matrix through rank 0's disk — exactly the serial bottleneck the paper
//! measures at 4.5–14.5× the cost of message-based redistribution. For
//! *surviving* a node loss we only ever need one rank's panel back, so a
//! much cheaper scheme suffices: every rank replicates its local panel to
//! the next rank on a ring (its **buddy**) and holds the previous rank's
//! panel (its **ward**). The copies are refreshed at resize points, where
//! the data is quiescent anyway; when rank `r` dies, rank `(r+1) % P` can
//! reconstruct `r`'s panel from memory and the survivors redistribute to a
//! shrunk grid without touching a disk or a central node.
//!
//! Redundancy is lost only when a rank *and* its buddy die in the same
//! epoch — the caller detects that case up front ([`recover_matrix`]
//! returns the unrecoverable rank) and falls back to failing the job.

use reshape_mpisim::{Comm, Pod};

use crate::{Descriptor, DistMatrix};

/// Tag range for the replication ring (`base + matrix index`).
const TAG_BUDDY_BASE: u32 = 8_600_000;
/// Tag range for recovery traffic (`base + matrix index`).
const TAG_RECOVER_BASE: u32 = 8_650_000;

/// One rank's redundancy state: a deep copy of its ward's panels — plus a
/// snapshot of its *own* panels from the same instant — refreshed at every
/// resize point.
///
/// The own-panel snapshot is what makes recovery *consistent*: a dead
/// rank's panel is only available as of the last replication, so every
/// survivor must roll back to that same epoch (and the driver replays the
/// iterations since) or the rebuilt matrix would mix old and new data.
pub struct BuddyStore<T> {
    /// Old-grid rank we replicate *to*.
    buddy: usize,
    /// Old-grid rank whose panels we hold.
    ward: usize,
    /// The ward's panels, one per protected matrix, with their layouts.
    entries: Vec<(Descriptor, usize, usize, Vec<T>)>,
    /// This rank's own panels at replication time, same order as `entries`.
    own: Vec<(Descriptor, usize, usize, Vec<T>)>,
}

impl<T: Pod + Default> BuddyStore<T> {
    /// Collectively replicate every rank's panels around the ring.
    /// `mats` must be grid-consistent across ranks (same descriptors in the
    /// same order); the ring covers the grid's `P` ranks, and callers on a
    /// larger communicator (ranks `>= P`) get an empty store.
    ///
    /// All ranks must be alive: replication happens at resize points and at
    /// job start, never during recovery.
    pub fn replicate(comm: &Comm, mats: &[DistMatrix<T>]) -> BuddyStore<T> {
        let me = comm.rank();
        let p = mats
            .first()
            .map(|m| m.desc.nprow * m.desc.npcol)
            .unwrap_or(0);
        if p == 0 || me >= p {
            return BuddyStore {
                buddy: me,
                ward: me,
                entries: Vec::new(),
                own: Vec::new(),
            };
        }
        assert!(
            comm.size() >= p,
            "communicator smaller than the protected grid"
        );
        let buddy = (me + 1) % p;
        let ward = (me + p - 1) % p;
        let (wr0, wc0) = (ward / mats[0].desc.npcol, ward % mats[0].desc.npcol);
        let mut entries = Vec::with_capacity(mats.len());
        let mut own = Vec::with_capacity(mats.len());
        let mut bytes = 0u64;
        for (idx, m) in mats.iter().enumerate() {
            assert_eq!(
                m.desc.nprow * m.desc.npcol,
                p,
                "all protected matrices must share one grid"
            );
            let tag = TAG_BUDDY_BASE + idx as u32;
            let panel = comm.sendrecv(buddy, ward, tag, m.local_data());
            bytes += std::mem::size_of_val(m.local_data()) as u64;
            let (wr, wc) = (ward / m.desc.npcol, ward % m.desc.npcol);
            debug_assert_eq!((wr, wc), (wr0, wc0));
            entries.push((m.desc, wr, wc, panel));
            own.push((m.desc, m.myrow, m.mycol, m.local_data().to_vec()));
        }
        reshape_telemetry::incr("buddy.replications", 1);
        reshape_telemetry::incr("buddy.bytes_replicated", bytes);
        BuddyStore { buddy, ward, entries, own }
    }

    /// The rank this store's owner replicates to.
    pub fn buddy(&self) -> usize {
        self.buddy
    }

    /// The rank whose panels this store holds.
    pub fn ward(&self) -> usize {
        self.ward
    }

    /// Number of protected matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reconstruct the ward's panel for matrix `idx` as a full
    /// [`DistMatrix`] at the ward's grid position.
    pub fn restore(&self, idx: usize) -> DistMatrix<T> {
        let (desc, wr, wc, ref panel) = self.entries[idx];
        let mut m = DistMatrix::new(desc, wr, wc);
        m.set_local_data(panel.clone());
        reshape_telemetry::incr("buddy.restores", 1);
        m
    }

    /// This rank's own panel for matrix `idx` as it was at replication time.
    /// Recovery feeds these — not the live matrices — into
    /// [`recover_matrix`], rolling every survivor back to the epoch the
    /// dead rank's buddy copy belongs to; the driver then replays the
    /// iterations executed since.
    pub fn own_snapshot(&self, idx: usize) -> DistMatrix<T> {
        let (desc, r, c, ref panel) = self.own[idx];
        let mut m = DistMatrix::new(desc, r, c);
        m.set_local_data(panel.clone());
        m
    }
}

/// Rebuild one protected matrix on the survivor grid after a rank death.
///
/// Collective over the *old* communicator's surviving ranks. `survivors`
/// is the agreed, strictly ascending list of old ranks still alive (the
/// caller establishes agreement — e.g. the driver's recovery fence); every
/// old rank not in it is treated as dead regardless of transient router
/// state, so all survivors compute identical holder/destination maps.
///
/// Each element of the matrix is fetched from its *holder* — the old owner
/// if it survived, otherwise the owner's buddy, who carries the panel in
/// `store` — and delivered to its owner under `dst`, the descriptor of the
/// shrunk survivor grid (new rank `k` is old rank `survivors[k]`).
///
/// Returns `Err(rank)` — before any data moves — when some dead `rank` has
/// a dead buddy too: redundancy is lost and the caller must fall back to
/// failing the job. Transport failures during recovery (a *second* death
/// mid-flight) also return `Err` with the implicated rank.
pub fn recover_matrix<T: Pod + Default>(
    comm: &Comm,
    survivors: &[usize],
    mine: &DistMatrix<T>,
    store: &BuddyStore<T>,
    idx: usize,
    dst: Descriptor,
) -> Result<Option<DistMatrix<T>>, usize> {
    let s = mine.desc;
    let p = s.nprow * s.npcol;
    let me = comm.rank();
    assert!(
        survivors.windows(2).all(|w| w[0] < w[1]),
        "survivor list must be strictly ascending"
    );
    assert!(survivors.contains(&me), "recover_matrix is collective over survivors");
    assert_eq!(
        dst.nprow * dst.npcol,
        survivors.len(),
        "destination grid must cover exactly the survivors"
    );
    let alive = |r: usize| survivors.binary_search(&r).is_ok();

    // Up-front redundancy audit, identical on every survivor: a dead rank
    // whose buddy is also dead is unrecoverable, and we bail before moving
    // anything so the old layout (and the buddy copies) stay intact.
    for o in 0..p {
        if !alive(o) && !alive((o + 1) % p) {
            reshape_telemetry::incr("buddy.unrecoverable", 1);
            return Err(o);
        }
    }

    // The ward's panel, reconstructed once if we are standing in for a dead
    // neighbor.
    let ward_matrix = (!alive(store.ward()) && store.ward() != me && !store.is_empty())
        .then(|| store.restore(idx));

    let holder_of = |o: usize| if alive(o) { o } else { (o + 1) % p };

    // Pass 1 (pure index math): route every element, building the outgoing
    // per-destination buffers this rank holds and counting what it expects
    // from each holder. Senders and receivers walk the same global
    // row-major order, so per-(holder, destination) streams line up.
    let mut out_bufs: Vec<Vec<T>> = vec![Vec::new(); survivors.len()];
    let mut expect: Vec<usize> = vec![0; survivors.len()];
    for i in 0..s.m {
        for j in 0..s.n {
            let (pr, pc) = s.owner_of(i, j);
            let o = pr * s.npcol + pc;
            let h = holder_of(o);
            let (qr, qc) = dst.owner_of(i, j);
            let k = qr * dst.npcol + qc;
            if h == me {
                let v = if o == me {
                    mine.get_global(i, j).expect("owner holds its element")
                } else {
                    ward_matrix
                        .as_ref()
                        .expect("holder for a dead rank carries its ward panel")
                        .get_global(i, j)
                        .expect("ward panel holds the dead rank's element")
                };
                out_bufs[k].push(v);
            }
            if survivors[k] == me {
                let hk = survivors.binary_search(&h).expect("holder is a survivor");
                expect[hk] += 1;
            }
        }
    }

    // Transport: send each non-local stream, then collect what we expect.
    let tag = TAG_RECOVER_BASE + idx as u32;
    let my_new = survivors.binary_search(&me).expect("checked above");
    for (k, buf) in out_bufs.iter().enumerate() {
        if survivors[k] != me && !buf.is_empty() && comm.try_send(survivors[k], tag, buf).is_err() {
            return Err(survivors[k]);
        }
    }
    let mut in_bufs: Vec<Vec<T>> = vec![Vec::new(); survivors.len()];
    for (hk, &n) in expect.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if survivors[hk] == me {
            in_bufs[hk] = std::mem::take(&mut out_bufs[my_new]);
        } else {
            match comm.recv_or_failed::<T>(survivors[hk], tag) {
                Ok(buf) => {
                    if buf.len() != n {
                        return Err(survivors[hk]);
                    }
                    in_bufs[hk] = buf;
                }
                Err(()) => return Err(survivors[hk]),
            }
        }
    }

    // Pass 2: same walk, consuming each holder's stream in order.
    let (dr, dc) = (my_new / dst.npcol, my_new % dst.npcol);
    let mut out = DistMatrix::<T>::new(dst, dr, dc);
    let mut cursor: Vec<usize> = vec![0; survivors.len()];
    for i in 0..s.m {
        for j in 0..s.n {
            let (qr, qc) = dst.owner_of(i, j);
            let k = qr * dst.npcol + qc;
            if survivors[k] != me {
                continue;
            }
            let (pr, pc) = s.owner_of(i, j);
            let h = holder_of(pr * s.npcol + pc);
            let hk = survivors.binary_search(&h).expect("holder is a survivor");
            let v = in_bufs[hk][cursor[hk]];
            cursor[hk] += 1;
            assert!(out.set_global(i, j, v), "element routed to its new owner");
        }
    }
    reshape_telemetry::incr("buddy.recoveries", 1);
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_mpisim::{NetModel, Universe};

    fn survivor_sync(comm: &Comm, survivors: &[usize]) {
        const TAG_SYNC: u32 = 7_700_000;
        let me = comm.rank();
        let root = survivors[0];
        let mut buf: Vec<u64> = Vec::new();
        if me == root {
            for &r in &survivors[1..] {
                comm.recv_into(r, TAG_SYNC, &mut buf);
            }
            for &r in &survivors[1..] {
                comm.send(r, TAG_SYNC, &[1u64]);
            }
        } else {
            comm.send(root, TAG_SYNC, &[me as u64]);
            comm.recv_into(root, TAG_SYNC, &mut buf);
        }
    }

    #[test]
    fn replicate_stores_the_wards_panel() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "buddy-rep", |comm| {
            let desc = Descriptor::square(8, 2, 2, 2);
            let me = comm.rank();
            let mut m = DistMatrix::from_fn(desc, me / 2, me % 2, |i, j| (i * 100 + j) as f64);
            let store = BuddyStore::replicate(&comm, std::slice::from_ref(&m));
            // The own-panel snapshot is a deep copy frozen at replication:
            // mutating the live matrix afterwards must not leak into it.
            let frozen = m.local_data().to_vec();
            for v in m.local_data_mut() {
                *v += 1000.0;
            }
            let snap = store.own_snapshot(0);
            assert_eq!(snap.local_data(), &frozen[..]);
            assert_eq!((snap.myrow, snap.mycol), (m.myrow, m.mycol));
            let ward = (me + 3) % 4;
            assert_eq!(store.ward(), ward);
            assert_eq!(store.buddy(), (me + 1) % 4);
            let restored = store.restore(0);
            let expect =
                DistMatrix::from_fn(desc, ward / 2, ward % 2, |i, j| (i * 100 + j) as f64);
            assert_eq!(restored.local_data(), expect.local_data());
            assert_eq!((restored.myrow, restored.mycol), (expect.myrow, expect.mycol));
        })
        .join_ok();
    }

    #[test]
    fn recover_rebuilds_dead_ranks_elements() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "buddy-rec", |comm| {
            let s = Descriptor::square(10, 3, 2, 2); // ragged blocks on purpose
            let me = comm.rank();
            let m = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 1009 + j) as f64);
            let store = BuddyStore::replicate(&comm, std::slice::from_ref(&m));
            if me == 2 {
                return; // dies after replication; its buddy (rank 3) holds its panel
            }
            while comm.rank_alive(2) {
                std::thread::yield_now();
            }
            let survivors = [0usize, 1, 3];
            let d = Descriptor::new(10, 10, 3, 3, 1, 3);
            let out = recover_matrix(&comm, &survivors, &m, &store, 0, d)
                .expect("one dead rank with a live buddy is recoverable")
                .expect("every survivor is in the new grid");
            for i in 0..10 {
                for j in 0..10 {
                    if let Some(v) = out.get_global(i, j) {
                        assert_eq!(v, (i * 1009 + j) as f64, "element ({i},{j})");
                    }
                }
            }
            survivor_sync(&comm, &survivors);
        })
        .join_ok();
    }

    #[test]
    fn dead_buddy_pair_is_unrecoverable() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "buddy-lost", |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let me = comm.rank();
            let m = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i + j) as f64);
            let store = BuddyStore::replicate(&comm, std::slice::from_ref(&m));
            if me == 2 || me == 3 {
                return; // rank 2 and its buddy rank 3 both die
            }
            while comm.rank_alive(2) || comm.rank_alive(3) {
                std::thread::yield_now();
            }
            let survivors = [0usize, 1];
            let d = Descriptor::new(8, 8, 2, 2, 1, 2);
            let err = recover_matrix(&comm, &survivors, &m, &store, 0, d)
                .expect_err("rank 2's panel is gone with both holders dead");
            assert_eq!(err, 2);
            survivor_sync(&comm, &survivors);
        })
        .join_ok();
    }
}
