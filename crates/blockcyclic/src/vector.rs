//! 1-D block-cyclic distributed vectors.
//!
//! The paper's redistribution library handles "generic one- and
//! two-dimensional block-cyclic data redistribution algorithms for global
//! arrays"; [`DistVector`] is the 1-D global array: `n` elements in blocks
//! of `nb` over `p` processes (process `k` owns blocks `k, k+p, …`).

use crate::index::{g2l, l2g, numroc};
use reshape_mpisim::Pod;

/// The locally owned part of a 1-D block-cyclic vector.
#[derive(Clone, Debug, PartialEq)]
pub struct DistVector<T> {
    /// Global length.
    pub n: usize,
    /// Block size.
    pub nb: usize,
    /// Process count of the distribution.
    pub nprocs: usize,
    /// This part's process coordinate.
    pub iproc: usize,
    data: Vec<T>,
}

impl<T: Pod + Default> DistVector<T> {
    /// Zero-initialized local part for process `iproc` of `nprocs`.
    pub fn new(n: usize, nb: usize, iproc: usize, nprocs: usize) -> Self {
        assert!(nb > 0 && nprocs > 0 && iproc < nprocs);
        let len = numroc(n, nb, iproc, nprocs);
        DistVector {
            n,
            nb,
            nprocs,
            iproc,
            data: vec![T::default(); len],
        }
    }

    /// Fill from a function of the global index.
    pub fn from_fn(
        n: usize,
        nb: usize,
        iproc: usize,
        nprocs: usize,
        f: impl Fn(usize) -> T,
    ) -> Self {
        let mut v = Self::new(n, nb, iproc, nprocs);
        for l in 0..v.data.len() {
            v.data[l] = f(l2g(l, nb, iproc, nprocs));
        }
        v
    }

    pub fn local_len(&self) -> usize {
        self.data.len()
    }

    pub fn local_data(&self) -> &[T] {
        &self.data
    }

    pub fn local_data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline]
    pub fn get_local(&self, l: usize) -> T {
        self.data[l]
    }

    #[inline]
    pub fn set_local(&mut self, l: usize, v: T) {
        self.data[l] = v;
    }

    /// Value of global element `g` if owned by this part.
    pub fn get_global(&self, g: usize) -> Option<T> {
        let (p, l) = g2l(g, self.nb, self.nprocs);
        (p == self.iproc).then(|| self.data[l])
    }

    /// Global index of local element `l`.
    pub fn global_index(&self, l: usize) -> usize {
        l2g(l, self.nb, self.iproc, self.nprocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_partition_the_vector() {
        let n = 23;
        let nb = 3;
        let p = 4;
        let mut seen = vec![false; n];
        for ip in 0..p {
            let v = DistVector::from_fn(n, nb, ip, p, |g| g as f64);
            for l in 0..v.local_len() {
                let g = v.global_index(l);
                assert_eq!(v.get_local(l), g as f64);
                assert_eq!(v.get_global(g), Some(g as f64));
                assert!(!seen[g], "element {g} owned twice");
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn foreign_elements_are_none() {
        let v = DistVector::<f64>::new(10, 2, 0, 2);
        assert!(v.get_global(0).is_some()); // block 0 -> proc 0
        assert!(v.get_global(2).is_none()); // block 1 -> proc 1
    }
}
