//! Seeded workload + fault-schedule generation.
//!
//! A [`Scenario`] is everything one harness run needs: cluster size, queue
//! policy, a job mix drawn from the paper's application classes (grid,
//! 1-D, master–worker; resizable and static), and a per-job fault schedule
//! (fail at a check-in, cancel at a check-in, or a spawn failure on the
//! job's next expansion). Identical seeds produce identical scenarios.

use reshape_core::{JobSpec, ProcessorConfig, QueuePolicy, TopologyPref};

use crate::rng::SplitMix64;

/// One injected fault for one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The job's processes die at its `n`-th check-in (1-based): the System
    /// Monitor reports a failure and the scheduler must reclaim.
    FailAtCheckin(usize),
    /// The user cancels the job at its `n`-th check-in.
    CancelAtCheckin(usize),
    /// The next expansion the Remap Scheduler grants is not actuated
    /// (spawn returned too few processes); the job reverts.
    ExpandFailure,
    /// The job goes silent at its `n`-th check-in (livelock/deadlock): it
    /// stops reaching resize points without its processes dying. The
    /// harness's watchdog model must declare it hung and reclaim.
    HangAtCheckin(usize),
    /// One node under the job dies at its `n`-th check-in. When
    /// `buddy_intact` the driver's shrink-to-survivors recovery succeeds:
    /// the harness reports a forced shrink (`on_node_failed`) and the job
    /// continues at the degraded size. Otherwise the dead rank's buddy died
    /// with it, redundancy is lost, and the job fails outright.
    NodeLoss { checkin: usize, buddy_intact: bool },
}

/// One job of the workload.
#[derive(Clone, Debug)]
pub struct JobPlan {
    pub spec: JobSpec,
    /// Submission time (non-decreasing across the workload).
    pub arrival: f64,
    /// Per-iteration sequential work; iteration time is `work / procs`, so
    /// expansions always look profitable to the §3.1 policy and the
    /// generated schedules exercise the expand path heavily.
    pub work: f64,
    pub fault: Option<Fault>,
}

/// A complete seeded harness input.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub seed: u64,
    pub total_procs: usize,
    pub policy: QueuePolicy,
    pub jobs: Vec<JobPlan>,
}

/// Expand `seed` into a scenario. Every draw comes from one SplitMix64
/// stream, so the mapping is a pure function of the seed.
pub fn generate(seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(seed);
    let total_procs = rng.usize_range(4, 64);
    let policy = if rng.chance(1, 2) {
        QueuePolicy::Fcfs
    } else {
        QueuePolicy::Backfill
    };
    let njobs = rng.usize_range(1, 12);
    let mut arrival = 0.0;
    let mut jobs = Vec::with_capacity(njobs);
    for i in 0..njobs {
        // Mix burst arrivals (contention from the start, FCFS/backfill
        // pressure) with staggered ones (later jobs land on a cluster the
        // early jobs have already expanded into — the only way the §3.1
        // shrink-for-queue rule can fire).
        arrival += if rng.chance(1, 2) {
            rng.f64_range(0.0, 2.0)
        } else {
            rng.f64_range(5.0, 40.0)
        };
        let iterations = rng.usize_range(1, 6);
        let spec = gen_spec(&mut rng, i, iterations);
        let fault = gen_fault(&mut rng, &spec, iterations);
        // A job scheduled to survive a node loss must have opted into the
        // recovery machinery, like a real submission would.
        let spec = if matches!(fault, Some(Fault::NodeLoss { buddy_intact: true, .. })) {
            spec.survivable()
        } else {
            spec
        };
        jobs.push(JobPlan {
            spec,
            arrival,
            work: rng.f64_range(50.0, 200.0),
            fault,
        });
    }
    Scenario {
        seed,
        total_procs,
        policy,
        jobs,
    }
}

/// Draw a job spec from the paper's application classes. Initial
/// configurations are kept at ≤ 4 processors so every job fits even the
/// smallest generated cluster (4) — a job that can never start would make
/// the all-jobs-terminate invariant vacuously unfalsifiable.
fn gen_spec(rng: &mut SplitMix64, index: usize, iterations: usize) -> JobSpec {
    let spec = match rng.range(0, 2) {
        0 => {
            let ps = *rng.pick(&[8000usize, 12000, 16000, 24000]);
            let initial = if rng.chance(1, 2) {
                ProcessorConfig::new(1, 2)
            } else {
                ProcessorConfig::new(2, 2)
            };
            JobSpec::new(
                format!("grid{index}"),
                TopologyPref::Grid { problem_size: ps },
                initial,
                iterations,
            )
        }
        1 => {
            let even_only = rng.chance(1, 2);
            JobSpec::new(
                format!("lin{index}"),
                TopologyPref::Linear {
                    problem_size: 8000,
                    even_only,
                },
                ProcessorConfig::linear(*rng.pick(&[2usize, 4])),
                iterations,
            )
        }
        _ => JobSpec::new(
            format!("mw{index}"),
            TopologyPref::AnyCount {
                min: 2,
                max: 16,
                step: 2,
            },
            ProcessorConfig::linear(2),
            iterations,
        ),
    };
    // The admission-order oracle assumes a priority-flat queue; ~1 in 5
    // jobs is statically scheduled as in the paper's mixed workloads.
    if rng.chance(1, 5) {
        spec.static_job()
    } else {
        spec
    }
}

fn gen_fault(rng: &mut SplitMix64, spec: &JobSpec, iterations: usize) -> Option<Fault> {
    if !rng.chance(1, 4) {
        return None;
    }
    Some(match rng.range(0, 4) {
        0 => Fault::FailAtCheckin(rng.usize_range(1, iterations)),
        1 => Fault::CancelAtCheckin(rng.usize_range(1, iterations)),
        2 => Fault::HangAtCheckin(rng.usize_range(1, iterations)),
        3 => Fault::NodeLoss {
            checkin: rng.usize_range(1, iterations),
            buddy_intact: rng.chance(3, 4),
        },
        _ if spec.resizable => Fault::ExpandFailure,
        // Static jobs never expand; give them a failure instead so the
        // fault still fires.
        _ => Fault::FailAtCheckin(rng.usize_range(1, iterations)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(123);
        let b = generate(123);
        assert_eq!(a.total_procs, b.total_procs);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.spec.initial, y.spec.initial);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.work, y.work);
            assert_eq!(x.fault, y.fault);
        }
    }

    #[test]
    fn every_job_fits_the_cluster() {
        for seed in 0..100 {
            let sc = generate(seed);
            for j in &sc.jobs {
                assert!(
                    j.spec.initial.procs() <= sc.total_procs,
                    "seed {seed}: job {} needs {} of {}",
                    j.spec.name,
                    j.spec.initial.procs(),
                    sc.total_procs
                );
            }
        }
    }

    #[test]
    fn fault_mix_is_exercised() {
        let (mut fails, mut cancels, mut expands, mut hangs) = (0, 0, 0, 0);
        let (mut losses_survivable, mut losses_fatal) = (0, 0);
        for seed in 0..300 {
            for j in generate(seed).jobs {
                match j.fault {
                    Some(Fault::FailAtCheckin(_)) => fails += 1,
                    Some(Fault::CancelAtCheckin(_)) => cancels += 1,
                    Some(Fault::ExpandFailure) => expands += 1,
                    Some(Fault::HangAtCheckin(_)) => hangs += 1,
                    Some(Fault::NodeLoss { buddy_intact: true, .. }) => losses_survivable += 1,
                    Some(Fault::NodeLoss { buddy_intact: false, .. }) => losses_fatal += 1,
                    None => {}
                }
            }
        }
        assert!(fails > 0 && cancels > 0 && expands > 0 && hangs > 0);
        assert!(
            losses_survivable > 0 && losses_fatal > 0,
            "node-loss mix unexercised: {losses_survivable}/{losses_fatal}"
        );
    }
}
