//! Federation chaos drills: seeded multi-shard, multi-tenant workloads
//! with shard kills, lease expiries and wire chaos, checked after every
//! transition by a *global ledger oracle*.
//!
//! The ledger invariant the sweep enforces, at every instant of every run:
//!
//! * every federation-global processor is owned by **exactly one**
//!   authority — its native shard (if not lent away), or the borrower that
//!   attached it under a live lease — or it sits in escrow under exactly
//!   one unreclaimed lease (granted but not attached, released but not yet
//!   reclaimed, or held by a doomed down borrower);
//! * no processor is ever claimed by two shards, where a shard's claim is
//!   judged from its *authoritative* state: the live core if it is up, the
//!   frozen crash snapshot if it is down (a down borrower whose lease has
//!   expired is doomed — the recovery fixup evicts before its core can run
//!   again — so its claim does not count);
//! * every lease a live shard holds appears in the right write-ahead logs:
//!   the lender journaled `lend_grant`, the borrower `borrow_attach`, and
//!   — crucially — a lease attached by a borrower that the *lender* never
//!   journaled is a forged grant
//!   ([`reshape_federation::Federation::chaos_plant_double_grant`] plants
//!   exactly this, and [`run_planted_double_grant`] proves the oracle
//!   catches it);
//! * no lease is honored across an **epoch fence**: a lender's fencing
//!   epoch never regresses below a lease it minted, the borrower journals
//!   the mint epoch with its attachment, and an attachment created at or
//!   after the lender fenced the lease is a violation (the partition
//!   drills in [`crate::partition`] plant exactly that).
//!
//! On failure with `TESTKIT_FAULT_DIR` set, the generated scenario (the
//! full fault schedule) and every shard's WAL are dumped under
//! `$TESTKIT_FAULT_DIR/fed-seed-<seed>*` for offline replay.

use std::collections::{BTreeMap, BTreeSet};

use reshape_core::ctrl::ChaosConfig;
use reshape_core::{JobSpec, ProcessorConfig, QueuePolicy, TopologyPref, WalRecord};
use reshape_federation::sim::{run_with_fed, FedJob, FedReport, FedSimConfig, KillPlan};
use reshape_federation::{
    BrownoutConfig, BusConfig, Federation, FederationConfig, LeaseConfig, TenantConfig,
};

use crate::oracle;
use crate::rng::SplitMix64;

// ----------------------------------------------------------------------
// Scenario generation
// ----------------------------------------------------------------------

/// Generate a seeded federation scenario: 2–5 shards, 2–6 tenants with
/// quotas/weights/queue bounds, tens of jobs with fail/cancel faults, a
/// lease protocol tuned so expiries actually fire, scripted shard kills,
/// and (on half the seeds) a chaotic wire.
///
/// Every artifact derives from independent [`SplitMix64`] streams split
/// off the one seed, so adding a draw to one stream never perturbs the
/// others.
pub fn generate_federation(seed: u64) -> FedSimConfig {
    let mut topo = SplitMix64::new(seed ^ 0xFED0_0001);
    let mut ten = SplitMix64::new(seed ^ 0xFED0_0002);
    let mut jobs_rng = SplitMix64::new(seed ^ 0xFED0_0003);
    let mut fault = SplitMix64::new(seed ^ 0xFED0_0004);
    let mut wire = SplitMix64::new(seed ^ 0xFED0_0005);

    let n_shards = topo.usize_range(2, 5);
    let shard_procs: Vec<usize> = (0..n_shards).map(|_| topo.usize_range(3, 8)).collect();
    let min_shard = *shard_procs.iter().min().unwrap();
    // A job must fit some shard natively or it can starve forever; cap
    // needs at the smallest native pool (lending covers busy pools, not
    // undersized ones).
    let max_need = min_shard.min(4);

    let n_tenants = ten.usize_range(2, 6);
    let tenants: Vec<TenantConfig> = (0..n_tenants)
        .map(|_| {
            TenantConfig::new(
                ten.usize_range(6, 24),
                *ten.pick(&[0.5, 1.0, 1.0, 2.0, 4.0]),
                ten.usize_range(2, 10),
            )
        })
        .collect();

    let n_jobs = jobs_rng.usize_range(20, 60);
    let mut arrival = 0.0;
    let jobs: Vec<FedJob> = (0..n_jobs)
        .map(|i| {
            arrival += jobs_rng.f64_range(0.0, 1.2);
            let iters = jobs_rng.usize_range(1, 5);
            FedJob {
                tenant: jobs_rng.usize_range(0, n_tenants - 1) as u32,
                spec: JobSpec::new(
                    format!("fed-{seed}-{i}"),
                    TopologyPref::AnyCount {
                        min: 1,
                        max: 64,
                        step: 1,
                    },
                    ProcessorConfig::linear(jobs_rng.usize_range(1, max_need)),
                    iters,
                ),
                arrival,
                work: jobs_rng.f64_range(2.0, 8.0),
                fail_at: if jobs_rng.chance(1, 10) {
                    Some(jobs_rng.range(1, iters as u64) as u32)
                } else {
                    None
                },
                cancel_at: if jobs_rng.chance(1, 12) {
                    Some(jobs_rng.range(1, iters as u64) as u32)
                } else {
                    None
                },
            }
        })
        .collect();

    let mut cfg = FedSimConfig::new(shard_procs, tenants, jobs);
    if topo.chance(1, 3) {
        cfg.queue_policy = QueuePolicy::Backfill;
    }
    // Short terms relative to job durations so the expiry/reclaim arm
    // fires on real seeds, not only in unit tests.
    cfg.lease = LeaseConfig {
        term: fault.f64_range(6.0, 25.0),
        grace: fault.f64_range(2.0, 6.0),
        retry_backoff: fault.f64_range(1.0, 4.0),
        min_spare: fault.usize_range(0, 1),
        // Partition-free scenarios never hit the suspicion arm; the
        // partition sweep (`crate::partition`) randomizes it from its own
        // stream so these seeds stay bitwise stable.
        suspicion: 20.0,
    };
    let queue_high = fault.usize_range(4, 10);
    cfg.brownout = BrownoutConfig {
        queue_high,
        queue_low: fault.usize_range(0, queue_high.saturating_sub(2).min(3)),
        heartbeat_lag: fault.f64_range(5.0, 20.0),
    };
    cfg.bus = BusConfig {
        latency: wire.f64_range(0.01, 0.2),
        rto: wire.f64_range(0.5, 2.0),
        chaos: if wire.chance(1, 2) {
            Some(ChaosConfig {
                loss: wire.f64_range(0.0, 0.2),
                dup: wire.f64_range(0.0, 0.15),
                reorder: wire.f64_range(0.0, 0.2),
                seed: wire.next_u64(),
            })
        } else {
            None
        },
        // The partition sweep turns exponential retransmit pacing on from
        // its own stream; these seeds keep the fixed-rto wire.
        retx_backoff: None,
    };
    // Scripted kills: up to three, at seeded transition depths; down_for
    // straddles heartbeat_lag and the lease term so both the lag-brownout
    // and the expired-while-down fixups get exercised across the sweep.
    let n_kills = fault.usize_range(0, 3);
    cfg.kills = (0..n_kills)
        .map(|_| KillPlan {
            at_transition: fault.range(5, 150),
            shard: fault.usize_range(0, n_shards - 1),
            down_for: fault.f64_range(2.0, 28.0),
        })
        .collect();
    cfg
}

// ----------------------------------------------------------------------
// The global ledger oracle
// ----------------------------------------------------------------------

/// Check the federation-wide ownership ledger: exactly-one-owner for every
/// global processor (or exactly one unreclaimed lease in escrow), lease
/// records consistent between the shards' authoritative state and the
/// federation's lease table, and every live-held lease present in the
/// WALs that must know about it.
pub fn check_ledger(fed: &Federation) -> Result<(), String> {
    let now = fed.now();
    let total = fed.total_procs();

    // Per-shard structural invariants on every live core (double
    // allocation, pool accounting — lease-aware via owned_procs), plus
    // the brownout hysteresis edges: at or above the high-water mark the
    // latch must be on, at or below the low-water mark it must be off,
    // and the latch must mirror the core's expansion pause exactly.
    let bo = fed.brownout_config();
    for sh in fed.shards() {
        if let Some(core) = sh.core() {
            oracle::check_invariants(core).map_err(|e| format!("shard {}: {e}", sh.id()))?;
            let depth = core.queue_len();
            if sh.brownout() != core.expand_paused() {
                return Err(format!(
                    "shard {}: brownout latch {} but core expand_paused {}",
                    sh.id(),
                    sh.brownout(),
                    core.expand_paused()
                ));
            }
            if depth >= bo.queue_high && !sh.brownout() {
                return Err(format!(
                    "shard {}: queue depth {depth} >= high water {} but brownout is off",
                    sh.id(),
                    bo.queue_high
                ));
            }
            if depth <= bo.queue_low && sh.brownout() {
                return Err(format!(
                    "shard {}: queue depth {depth} <= low water {} but brownout is on",
                    sh.id(),
                    bo.queue_low
                ));
            }
        }
    }

    // Ownership pass. A shard's claim is judged from its authoritative
    // lease state: the live core, or the frozen crash snapshot.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); total];
    for sh in fed.shards() {
        let (lent, borrowed) = match sh.core() {
            Some(c) => (c.lent_leases(), c.borrowed_leases()),
            None => {
                let cr = sh.crash_snapshot().expect("down shard has a crash snapshot");
                (&cr.lent_leases, &cr.borrowed_leases)
            }
        };

        let mut lent_slots: BTreeSet<usize> = BTreeSet::new();
        for (id, slots) in lent {
            let Some(l) = fed.lease(*id) else {
                return Err(format!(
                    "shard {} escrows lease {id} unknown to the federation",
                    sh.id()
                ));
            };
            if l.lender != sh.id() {
                return Err(format!(
                    "lease {id} escrowed on shard {} but its lender is {}",
                    sh.id(),
                    l.lender
                ));
            }
            if l.reclaimed {
                return Err(format!(
                    "lease {id} marked reclaimed but still escrowed in lender {}",
                    sh.id()
                ));
            }
            let globals: BTreeSet<usize> = slots.iter().map(|&s| sh.base() + s).collect();
            if globals != l.global.iter().copied().collect() {
                return Err(format!(
                    "lease {id}: lender {} escrows slots {globals:?} but the grant says {:?}",
                    sh.id(),
                    l.global
                ));
            }
            for &s in slots {
                if s >= sh.native() {
                    return Err(format!(
                        "lease {id}: shard {} lends slot {s} outside its native 0..{}",
                        sh.id(),
                        sh.native()
                    ));
                }
                if !lent_slots.insert(s) {
                    return Err(format!(
                        "shard {}: native slot {s} lent under two leases",
                        sh.id()
                    ));
                }
            }
        }
        // Native claim: everything in the native range not lent away.
        for l in 0..sh.native() {
            if !lent_slots.contains(&l) {
                owners[sh.base() + l].push(sh.id());
            }
        }

        for (id, bl) in borrowed {
            let Some(l) = fed.lease(*id) else {
                return Err(format!(
                    "shard {} attaches lease {id} unknown to the federation",
                    sh.id()
                ));
            };
            if l.borrower != sh.id() {
                return Err(format!(
                    "lease {id} attached on shard {} but its borrower is {}",
                    sh.id(),
                    l.borrower
                ));
            }
            // A down borrower whose lease has expired — or been fenced by
            // its lender — is doomed: the recovery fixup evicts before its
            // frozen core can schedule anything, so the lender's timed
            // reclaim at expires + grace (or its post-fence repair) does
            // not create double ownership — and its frozen attach is
            // allowed to lag the federation's lease table.
            let doomed = sh.core().is_none() && (now >= l.expires || l.fenced());
            // The fencing rule, checked first because it is the strongest
            // claim: once the lender fences a lease, no attachment created
            // at or after the fence may live. An attach that predates the
            // fence is tolerated until the heal repair (or the
            // doomed-borrower fixup) evicts it.
            if !doomed {
                if let (Some(f), Some(a)) = (l.fenced_at, l.attached_at) {
                    if a >= f {
                        return Err(format!(
                            "lease {id}: attached on shard {} at t={a:.3}, at or after its \
                             epoch fence at t={f:.3} — a lease must never be honored across \
                             an epoch fence",
                            sh.id()
                        ));
                    }
                }
            }
            if l.borrower_done && !doomed {
                return Err(format!(
                    "lease {id} is borrower-done but still attached on shard {}",
                    sh.id()
                ));
            }
            if l.reclaimed && !doomed {
                return Err(format!(
                    "lease {id} attached on shard {} but its lender already reclaimed it",
                    sh.id()
                ));
            }
            let globals: BTreeSet<usize> = bl.global.iter().copied().collect();
            if globals != l.global.iter().copied().collect() {
                return Err(format!(
                    "lease {id}: borrower {} attached {globals:?} but the grant says {:?}",
                    sh.id(),
                    l.global
                ));
            }
            if bl.lender_epoch != l.lender_epoch {
                return Err(format!(
                    "lease {id}: borrower {} journaled lender epoch {} but the grant was \
                     minted under {}",
                    sh.id(),
                    bl.lender_epoch,
                    l.lender_epoch
                ));
            }
            if !doomed {
                for &g in &bl.global {
                    if g >= total {
                        return Err(format!(
                            "lease {id}: global processor {g} out of range 0..{total}"
                        ));
                    }
                    owners[g].push(sh.id());
                }
            }
        }
    }

    // Epoch pass: a lender's current fencing epoch (live core, or the
    // frozen crash image) must never regress below any lease it minted,
    // and a fenced lease proves the lender actually advanced past the
    // mint epoch.
    for l in fed.leases() {
        let sh = &fed.shards()[l.lender];
        let cur = match sh.core() {
            Some(c) => c.epoch(),
            None => {
                sh.crash_snapshot()
                    .expect("down shard has a crash snapshot")
                    .epoch
            }
        };
        if cur < l.lender_epoch {
            return Err(format!(
                "lease {}: minted under epoch {} but lender {} is at epoch {cur} — \
                 epochs must be monotonic",
                l.id, l.lender_epoch, l.lender
            ));
        }
        if l.fenced() && cur <= l.lender_epoch {
            return Err(format!(
                "lease {}: fenced, but lender {} epoch {cur} never advanced past the \
                 mint epoch {}",
                l.id, l.lender, l.lender_epoch
            ));
        }
    }

    for (g, who) in owners.iter().enumerate() {
        if who.len() > 1 {
            return Err(format!("processor {g} double-owned by shards {who:?}"));
        }
        if who.is_empty() {
            let escrows: Vec<u64> = fed
                .leases()
                .filter(|l| !l.reclaimed && l.global.contains(&g))
                .map(|l| l.id)
                .collect();
            match escrows.len() {
                1 => {}
                0 => {
                    return Err(format!(
                        "processor {g} leaked: no owner and no unreclaimed lease covers it"
                    ))
                }
                _ => {
                    return Err(format!(
                        "processor {g} escrowed under multiple leases {escrows:?}"
                    ))
                }
            }
        }
    }

    // WAL containment: leases held by live shards must be journaled. A
    // lease attached by a borrower that the lender never journaled is a
    // forged grant (the planted double-grant takes exactly this shape).
    let mut wal_grants: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    let mut wal_attaches: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    for sh in fed.shards() {
        let Some(wal) = sh.core().and_then(|c| c.wal()) else {
            continue;
        };
        let (grants, attaches) = (
            wal_grants.entry(sh.id()).or_default(),
            wal_attaches.entry(sh.id()).or_default(),
        );
        for r in wal.records() {
            match r {
                WalRecord::LendGrant { lease, .. } => {
                    grants.insert(*lease);
                }
                WalRecord::BorrowAttach { lease, .. } => {
                    attaches.insert(*lease);
                }
                _ => {}
            }
        }
    }
    for sh in fed.shards() {
        let Some(core) = sh.core() else { continue };
        for id in core.lent_leases().keys() {
            if !wal_grants.get(&sh.id()).is_some_and(|s| s.contains(id)) {
                return Err(format!(
                    "lease {id}: escrowed on shard {} but absent from its WAL",
                    sh.id()
                ));
            }
        }
        for id in core.borrowed_leases().keys() {
            if !wal_attaches.get(&sh.id()).is_some_and(|s| s.contains(id)) {
                return Err(format!(
                    "lease {id}: attached on shard {} but absent from its WAL",
                    sh.id()
                ));
            }
            let lender = fed.lease(*id).expect("checked above").lender;
            if let Some(g) = wal_grants.get(&lender) {
                if !g.contains(id) {
                    return Err(format!(
                        "lease {id}: attached by shard {} but never journaled by lender \
                         {lender} — forged grant",
                        sh.id()
                    ));
                }
            }
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// The chaos drill
// ----------------------------------------------------------------------

/// What one seeded federation chaos run proved.
#[derive(Clone, Debug)]
pub struct FedChaosReport {
    pub report: FedReport,
    /// Ledger oracle evaluations (one per discrete event).
    pub ledger_checks: u64,
    /// The federation drained fully: leases resolved, bus quiet, router
    /// queues empty, every shard live again.
    pub quiesced: bool,
}

/// Run one seeded federation chaos drill: generate the scenario, drive it
/// through the discrete-event federation simulator, and evaluate the
/// global ledger oracle after **every** event. The error string carries
/// the seed; with `TESTKIT_FAULT_DIR` set, the fault schedule and every
/// shard's WAL are also dumped to disk.
pub fn run_federation_chaos(seed: u64) -> Result<FedChaosReport, String> {
    let cfg = generate_federation(seed);
    let schedule = format!("{cfg:#?}");

    let mut first_err: Option<String> = None;
    let mut wal_dump: Vec<(usize, String)> = Vec::new();
    let mut checks = 0u64;
    let mut quiesced = false;
    let (report, fed) = run_with_fed(cfg, |fed, t| {
        checks += 1;
        quiesced = fed.quiesced();
        if first_err.is_some() {
            return; // keep the first violation; the run stays deterministic
        }
        if let Err(e) = check_ledger(fed) {
            first_err = Some(format!("t={t:.3} {e}"));
            for sh in fed.shards() {
                let text = match sh.core().and_then(|c| c.wal()) {
                    Some(w) => w.encode(),
                    None => sh.down_wal().unwrap_or_default().to_string(),
                };
                wal_dump.push((sh.id(), text));
            }
        }
    });
    let flightrec = fed.flightrec().dump_jsonl();

    if let Some(e) = first_err {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!("seed {seed}: ledger violation: {e}"));
    }
    // End-of-run acceptance: full terminal accounting, every recovery
    // replayed to snapshot equality, every lease round-tripped home.
    if !report.recoveries_matched {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: a WAL replay diverged from its crash snapshot"
        ));
    }
    let terminal =
        report.finished + report.failed + report.cancelled + report.evict_failed + report.shed;
    if terminal != report.submitted {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: accounting leak: {terminal} terminal of {} submitted ({report:?})",
            report.submitted
        ));
    }
    if report.leases_granted != report.leases_reclaimed {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: {} leases granted but {} reclaimed",
            report.leases_granted, report.leases_reclaimed
        ));
    }
    let per_kind = report.heal_repairs_recovery_fixup
        + report.heal_repairs_evict_stale_borrow
        + report.heal_repairs_return_escrow;
    if per_kind != report.heal_repairs {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: heal-repair kinds sum to {per_kind} but {} repairs were journaled",
            report.heal_repairs
        ));
    }
    if !quiesced {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!("seed {seed}: federation did not quiesce"));
    }
    Ok(FedChaosReport {
        report,
        ledger_checks: checks,
        quiesced,
    })
}

/// When `TESTKIT_FAULT_DIR` is set, persist the failing run's fault
/// schedule, WAL streams, and flight-recorder dump for offline replay.
fn dump_artifacts(seed: u64, schedule: &str, wals: &[(usize, String)], flightrec: &str) {
    let Ok(dir) = std::env::var("TESTKIT_FAULT_DIR") else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        format!("{dir}/fed-seed-{seed}.schedule.txt"),
        schedule,
    );
    for (shard, text) in wals {
        let _ = std::fs::write(format!("{dir}/fed-seed-{seed}-shard-{shard}.wal"), text);
    }
    let _ = std::fs::write(format!("{dir}/fed-seed-{seed}.flightrec.jsonl"), flightrec);
}

// ----------------------------------------------------------------------
// Oracle sensitivity: the planted double grant
// ----------------------------------------------------------------------

/// Drive a three-shard federation into a lend with the double-grant
/// backdoor armed: the lender wires the *same* processors to a second
/// borrower under a rogue lease it never journals. Returns the violation
/// message the ledger oracle raised, or `Err` if it never noticed — the
/// sensitivity proof that the sweep's green is meaningful.
pub fn run_planted_double_grant() -> Result<String, String> {
    run_planted_double_grant_with_fed().map(|(msg, _)| msg)
}

/// [`run_planted_double_grant`], also returning the federation so callers
/// can inspect the flight recorder of the failing run (the planted-failure
/// dump must be parseable — `crates/testkit/tests/flightrec.rs`).
pub fn run_planted_double_grant_with_fed() -> Result<(String, Federation), String> {
    let tenants = vec![TenantConfig::new(64, 1.0, 16)];
    let mut fcfg = FederationConfig::new(vec![4, 4, 4], tenants);
    fcfg.lease.min_spare = 1;
    let mut fed = Federation::new(fcfg);
    fed.chaos_plant_double_grant();

    let spec = JobSpec::new(
        "wide",
        TopologyPref::AnyCount {
            min: 1,
            max: 64,
            step: 1,
        },
        ProcessorConfig::linear(6),
        4,
    );
    // A 6-processor job fits no 4-wide shard: it queues, the lender
    // escrows a real lease — and the armed backdoor wires the rogue
    // duplicate to the third shard.
    fed.submit(0, 0, spec, 0.0);
    if let Err(e) = check_ledger(&fed) {
        return Ok((e, fed));
    }
    // Pump the bus until both grants land and attach.
    let mut t = 0.0;
    for _ in 0..64 {
        let Some(next) = fed.next_timer() else { break };
        t = next.max(t);
        fed.run_timers(t);
        if let Err(e) = check_ledger(&fed) {
            return Ok((e, fed));
        }
    }
    Err("ledger oracle never flagged the planted double grant".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = format!("{:?}", generate_federation(9));
        let b = format!("{:?}", generate_federation(9));
        assert_eq!(a, b);
        let c = format!("{:?}", generate_federation(10));
        assert_ne!(a, c);
    }

    #[test]
    fn healthy_federation_passes_the_ledger() {
        let tenants = vec![TenantConfig::new(32, 1.0, 8)];
        let fed = Federation::new(FederationConfig::new(vec![3, 5], tenants));
        check_ledger(&fed).unwrap();
    }

    #[test]
    fn planted_double_grant_is_caught() {
        let msg = run_planted_double_grant().expect("oracle must catch the rogue lease");
        assert!(
            msg.contains("double-owned") || msg.contains("forged") || msg.contains("reclaimed"),
            "unexpected violation message: {msg}"
        );
    }

    #[test]
    fn one_chaos_seed_end_to_end() {
        let rep = run_federation_chaos(7).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        assert!(rep.ledger_checks > 0);
        assert!(rep.quiesced);
    }
}
