//! The deterministic harness: drives a [`SchedulerCore`] through a seeded
//! [`Scenario`], injecting the scheduled faults, and runs the invariant
//! oracle after **every** scheduler transition plus the trace oracle at the
//! end. Any violation is reported with the scenario seed so the run can be
//! reproduced exactly.
//!
//! The harness is exposed at two granularities: [`run_scenario`] drives a
//! run to completion, while [`Driver`] executes one transition per
//! [`Driver::step`] call so crash-restart drills can stop mid-run, recover
//! a core from its write-ahead log, splice it in with
//! [`Driver::swap_core`], and continue under the same oracles.

use std::collections::BTreeMap;

use reshape_core::{Directive, EventKind, JobId, JobState, SchedulerCore, StartAction};

use crate::oracle;
use crate::scenario::{generate, Fault, Scenario};

/// What a run did — used by the harness tests to prove the generated
/// schedules actually exercise the interesting paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub transitions: usize,
    pub starts: usize,
    pub expansions: usize,
    pub shrinks: usize,
    pub expand_failures: usize,
    pub job_failures: usize,
    pub cancellations: usize,
    /// Hangs injected by [`Fault::HangAtCheckin`].
    pub hangs_injected: usize,
    /// Hung jobs killed by the harness's virtual-time watchdog model. A
    /// clean run has `watchdog_kills == hangs_injected`: every hang is
    /// detected, and no healthy job is ever killed.
    pub watchdog_kills: usize,
    /// Node losses the job outlived via forced shrink
    /// ([`Fault::NodeLoss`] with the buddy intact).
    pub node_losses_survived: usize,
}

/// Virtual seconds a hung job sits silent before the modeled watchdog
/// kills it (the deadline a real deployment derives from the profiled
/// iteration time; a constant is fine for the virtual-time harness).
pub(crate) const WATCHDOG_DEADLINE: f64 = 500.0;

/// Per-running-job bookkeeping of the simulated application side.
struct Live {
    plan: usize,
    next_checkin: f64,
    checkins: usize,
    /// `ExpandFailure` fault not yet fired.
    expand_fault_armed: bool,
    /// Job stopped checking in ([`Fault::HangAtCheckin`] fired); its next
    /// "event" is the watchdog deadline, not a check-in.
    hung: bool,
}

/// Upper bound on scheduler transitions per run; generated workloads use a
/// few hundred, so hitting this means a livelock.
pub(crate) const MAX_TRANSITIONS: usize = 100_000;

/// Expand `seed` and drive it. See [`run_scenario`].
pub fn run_seed(seed: u64) -> Result<RunStats, String> {
    run_scenario(&generate(seed))
}

/// Drive `scenario` to completion. Returns the first invariant violation
/// (prefixed with the seed) or the run's statistics.
pub fn run_scenario(sc: &Scenario) -> Result<RunStats, String> {
    run_scenario_on(sc, SchedulerCore::new(sc.total_procs, sc.policy))
}

/// [`run_scenario`] on a caller-prepared core — the planted-bug tests use
/// this to hand in a core with a chaos hook enabled and prove the oracle
/// notices.
pub fn run_scenario_on(sc: &Scenario, core: SchedulerCore) -> Result<RunStats, String> {
    Driver::new(sc, core).finish().map(|(stats, _)| stats)
}

/// Step-able scenario executor. Each [`Driver::step`] performs exactly one
/// scheduler transition (a submission, a check-in, or a watchdog kill) and
/// runs the invariant oracle; [`Driver::finish`] runs the remainder plus
/// the end-of-run trace oracle.
pub struct Driver<'a> {
    sc: &'a Scenario,
    core: SchedulerCore,
    live: BTreeMap<JobId, Live>,
    ids: Vec<Option<JobId>>,
    next_submission: usize,
    transitions: usize,
    hangs_injected: usize,
    watchdog_kills: usize,
    node_losses_survived: usize,
}

impl<'a> Driver<'a> {
    pub fn new(sc: &'a Scenario, core: SchedulerCore) -> Self {
        Driver {
            sc,
            core,
            live: BTreeMap::new(),
            ids: Vec::new(),
            next_submission: 0,
            transitions: 0,
            hangs_injected: 0,
            watchdog_kills: 0,
            node_losses_survived: 0,
        }
    }

    /// Transitions executed so far.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// Replace the scheduler mid-run (crash-restart drills splice in a core
    /// recovered from the crashed one's WAL) and return the old core. The
    /// application side (`live` bookkeeping) is untouched: the simulated
    /// jobs kept running while the scheduler was down, exactly like the
    /// paper's decoupled resize library.
    pub fn swap_core(&mut self, core: SchedulerCore) -> SchedulerCore {
        std::mem::replace(&mut self.core, core)
    }

    /// Execute one transition. `Ok(true)` means progress was made,
    /// `Ok(false)` means the scenario is exhausted.
    pub fn step(&mut self) -> Result<bool, String> {
        if self.ids.len() != self.sc.jobs.len() {
            self.ids.resize(self.sc.jobs.len(), None);
        }
        // Earliest pending event: the next submission or the earliest
        // check-in; ties go to the submission, then to the lowest JobId
        // (BTreeMap iteration order), keeping replays bit-identical.
        let sub_at =
            (self.next_submission < self.sc.jobs.len()).then(|| self.sc.jobs[self.next_submission].arrival);
        let next_checkin = self
            .live
            .iter()
            .min_by(|a, b| {
                a.1.next_checkin
                    .partial_cmp(&b.1.next_checkin)
                    .expect("finite times")
            })
            .map(|(id, l)| (*id, l.next_checkin));
        let (now, event) = match (sub_at, next_checkin) {
            (None, None) => return Ok(false),
            (Some(t), None) => (t, None),
            (None, Some((id, t))) => (t, Some(id)),
            (Some(ts), Some((id, tc))) => {
                if ts <= tc {
                    (ts, None)
                } else {
                    (tc, Some(id))
                }
            }
        };

        self.transitions += 1;
        if self.transitions > MAX_TRANSITIONS {
            return Err(self.fail(format!(
                "no progress after {MAX_TRANSITIONS} transitions — livelock"
            )));
        }

        match event {
            None => {
                let plan = &self.sc.jobs[self.next_submission];
                let (id, starts) = self.core.submit(plan.spec.clone(), now);
                self.ids[self.next_submission] = Some(id);
                self.next_submission += 1;
                register(&mut self.live, &starts, self.sc, &self.ids, now);
            }
            Some(id) => self.checkin(id, now)?,
        }
        oracle::check_invariants(&self.core).map_err(|e| self.fail(e))?;
        Ok(true)
    }

    /// Run the remaining transitions and the end-of-run trace oracle.
    /// Returns the statistics and the final core (crash drills compare its
    /// snapshot against an uninterrupted run's).
    pub fn finish(mut self) -> Result<(RunStats, SchedulerCore), String> {
        while self.step()? {}
        let need: BTreeMap<JobId, usize> = self
            .ids
            .iter()
            .zip(&self.sc.jobs)
            .filter_map(|(id, p)| id.map(|id| (id, p.spec.initial.procs())))
            .collect();
        oracle::check_trace(&self.core, self.core.events(), &need, self.sc.policy)
            .map_err(|e| self.fail(e))?;
        let mut st = stats(self.transitions, self.core.events());
        st.hangs_injected = self.hangs_injected;
        st.watchdog_kills = self.watchdog_kills;
        // Cross-check the harness's own count against the event trace: a
        // forced shrink that never produced a NodeFailed event (or vice
        // versa) would be a reporting bug.
        if st.node_losses_survived != self.node_losses_survived {
            return Err(self.fail(format!(
                "node-loss accounting diverged: {} reported, {} in the trace",
                self.node_losses_survived, st.node_losses_survived
            )));
        }
        Ok((st, self.core))
    }

    fn fail(&self, msg: String) -> String {
        format!("seed {}: {}", self.sc.seed, msg)
    }

    /// Process one application check-in (or watchdog deadline), firing any
    /// due fault.
    fn checkin(&mut self, id: JobId, now: f64) -> Result<(), String> {
        let (plan_idx, checkins, armed, hung) = {
            let l = self.live.get_mut(&id).expect("checkin for live job");
            if !l.hung {
                l.checkins += 1;
            }
            (l.plan, l.checkins, l.expand_fault_armed, l.hung)
        };
        let plan = &self.sc.jobs[plan_idx];

        // The watchdog deadline for a hung job: the modeled supervisor
        // declares it dead, the scheduler reclaims like any failure.
        if hung {
            let starts = self
                .core
                .on_failed(id, "hung: missed watchdog heartbeat deadline".into(), now);
            register(&mut self.live, &starts, self.sc, &self.ids, now);
            self.live.remove(&id);
            self.watchdog_kills += 1;
            return Ok(());
        }

        // A job cancelled at an earlier check-in comes back one more time to
        // pick up its Terminate directive, like a real driver would.
        let config = match self.core.job(id).map(|r| r.state.clone()) {
            Some(JobState::Running { config }) => config,
            _ => {
                let (d, starts) = self.core.resize_point(id, 0.0, 0.0, now);
                register(&mut self.live, &starts, self.sc, &self.ids, now);
                if d != Directive::Terminate {
                    return Err(format!("{id}: expected Terminate after cancel, got {d:?}"));
                }
                self.live.remove(&id);
                return Ok(());
            }
        };

        match plan.fault {
            Some(Fault::FailAtCheckin(k)) if k == checkins => {
                let starts = self.core.on_failed(id, "injected node failure".into(), now);
                register(&mut self.live, &starts, self.sc, &self.ids, now);
                self.live.remove(&id);
                return Ok(());
            }
            Some(Fault::CancelAtCheckin(k)) if k == checkins => {
                let starts = self.core.cancel(id, now);
                register(&mut self.live, &starts, self.sc, &self.ids, now);
                // One more check-in to receive Terminate.
                self.live.get_mut(&id).expect("still live").next_checkin = now + 0.01;
                return Ok(());
            }
            Some(Fault::HangAtCheckin(k)) if k == checkins => {
                // The job goes silent: no resize point, no completion. Its
                // next event is the watchdog deadline.
                let l = self.live.get_mut(&id).expect("still live");
                l.hung = true;
                l.next_checkin = now + WATCHDOG_DEADLINE;
                self.hangs_injected += 1;
                return Ok(());
            }
            Some(Fault::NodeLoss { checkin: k, buddy_intact }) if k == checkins => {
                if buddy_intact && config.procs() > 1 {
                    // The driver recovered onto the survivors and reports
                    // the forced shrink: one slot (the dead node's) is
                    // gone, the job keeps running degraded by one.
                    let dead = [*self
                        .core
                        .job(id)
                        .expect("running job holds slots")
                        .slots
                        .last()
                        .expect("running job holds at least one slot")];
                    let to = reshape_core::ProcessorConfig::new(1, config.procs() - 1);
                    let starts = self.core.on_node_failed(id, &dead, to, now);
                    register(&mut self.live, &starts, self.sc, &self.ids, now);
                    self.node_losses_survived += 1;
                    self.live.get_mut(&id).expect("still live").next_checkin =
                        now + plan.work / to.procs() as f64;
                } else {
                    // The rank's buddy died with it (or there was nobody
                    // left to shrink onto): redundancy lost, job over.
                    let starts =
                        self.core
                            .on_failed(id, "node lost with its buddy".into(), now);
                    register(&mut self.live, &starts, self.sc, &self.ids, now);
                    self.live.remove(&id);
                }
                return Ok(());
            }
            _ => {}
        }

        let iter_time = plan.work / config.procs() as f64;
        let (directive, starts) = self.core.resize_point(id, iter_time, 0.0, now);
        register(&mut self.live, &starts, self.sc, &self.ids, now);
        if let Directive::Expand { .. } = directive {
            if armed && matches!(plan.fault, Some(Fault::ExpandFailure)) {
                let starts = self.core.on_expand_failed(id, now);
                register(&mut self.live, &starts, self.sc, &self.ids, now);
                self.live.get_mut(&id).expect("still live").expand_fault_armed = false;
            }
        }

        if checkins >= plan.spec.iterations {
            let starts = self.core.on_finished(id, now);
            register(&mut self.live, &starts, self.sc, &self.ids, now);
            self.live.remove(&id);
        } else {
            let procs = match self.core.job(id).map(|r| r.state.clone()) {
                Some(JobState::Running { config }) => config.procs(),
                _ => config.procs(),
            };
            self.live.get_mut(&id).expect("still live").next_checkin =
                now + plan.work / procs as f64;
        }
        Ok(())
    }
}

/// Record scheduler-started jobs as live applications.
fn register(
    live: &mut BTreeMap<JobId, Live>,
    starts: &[StartAction],
    sc: &Scenario,
    ids: &[Option<JobId>],
    now: f64,
) {
    for s in starts {
        let plan = ids
            .iter()
            .position(|i| *i == Some(s.job))
            .expect("started job was submitted");
        let work = sc.jobs[plan].work;
        live.insert(
            s.job,
            Live {
                plan,
                next_checkin: now + work / s.config.procs() as f64,
                checkins: 0,
                expand_fault_armed: true,
                hung: false,
            },
        );
    }
}

pub(crate) fn stats(transitions: usize, events: &[reshape_core::SchedEvent]) -> RunStats {
    let mut st = RunStats {
        transitions,
        ..Default::default()
    };
    for e in events {
        match e.kind {
            EventKind::Started { .. } => st.starts += 1,
            EventKind::Expanded { .. } => st.expansions += 1,
            EventKind::Shrunk { .. } => st.shrinks += 1,
            EventKind::ExpandFailed { .. } => st.expand_failures += 1,
            EventKind::Failed { .. } => st.job_failures += 1,
            EventKind::Cancelled => st.cancellations += 1,
            EventKind::NodeFailed { .. } => st.node_losses_survived += 1,
            _ => {}
        }
    }
    st
}
