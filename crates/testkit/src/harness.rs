//! The deterministic harness: drives a [`SchedulerCore`] through a seeded
//! [`Scenario`], injecting the scheduled faults, and runs the invariant
//! oracle after **every** scheduler transition plus the trace oracle at the
//! end. Any violation is reported with the scenario seed so the run can be
//! reproduced exactly.

use std::collections::BTreeMap;

use reshape_core::{Directive, EventKind, JobId, JobState, SchedulerCore, StartAction};

use crate::oracle;
use crate::scenario::{generate, Fault, Scenario};

/// What a run did — used by the harness tests to prove the generated
/// schedules actually exercise the interesting paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub transitions: usize,
    pub starts: usize,
    pub expansions: usize,
    pub shrinks: usize,
    pub expand_failures: usize,
    pub job_failures: usize,
    pub cancellations: usize,
}

/// Per-running-job bookkeeping of the simulated application side.
struct Live {
    plan: usize,
    next_checkin: f64,
    checkins: usize,
    /// `ExpandFailure` fault not yet fired.
    expand_fault_armed: bool,
}

/// Upper bound on scheduler transitions per run; generated workloads use a
/// few hundred, so hitting this means a livelock.
const MAX_TRANSITIONS: usize = 100_000;

/// Expand `seed` and drive it. See [`run_scenario`].
pub fn run_seed(seed: u64) -> Result<RunStats, String> {
    run_scenario(&generate(seed))
}

/// Drive `scenario` to completion. Returns the first invariant violation
/// (prefixed with the seed) or the run's statistics.
pub fn run_scenario(sc: &Scenario) -> Result<RunStats, String> {
    run_scenario_on(sc, SchedulerCore::new(sc.total_procs, sc.policy))
}

/// [`run_scenario`] on a caller-prepared core — the planted-bug tests use
/// this to hand in a core with a chaos hook enabled and prove the oracle
/// notices.
pub fn run_scenario_on(sc: &Scenario, mut core: SchedulerCore) -> Result<RunStats, String> {
    let fail = |msg: String| format!("seed {}: {}", sc.seed, msg);
    let mut live: BTreeMap<JobId, Live> = BTreeMap::new();
    let mut ids: Vec<Option<JobId>> = vec![None; sc.jobs.len()];
    let mut next_submission = 0usize;
    let mut transitions = 0usize;

    loop {
        // Earliest pending event: the next submission or the earliest
        // check-in; ties go to the submission, then to the lowest JobId
        // (BTreeMap iteration order), keeping replays bit-identical.
        let sub_at = (next_submission < sc.jobs.len()).then(|| sc.jobs[next_submission].arrival);
        let next_checkin = live
            .iter()
            .min_by(|a, b| {
                a.1.next_checkin
                    .partial_cmp(&b.1.next_checkin)
                    .expect("finite times")
            })
            .map(|(id, l)| (*id, l.next_checkin));
        let (now, event) = match (sub_at, next_checkin) {
            (None, None) => break,
            (Some(t), None) => (t, None),
            (None, Some((id, t))) => (t, Some(id)),
            (Some(ts), Some((id, tc))) => {
                if ts <= tc {
                    (ts, None)
                } else {
                    (tc, Some(id))
                }
            }
        };

        transitions += 1;
        if transitions > MAX_TRANSITIONS {
            return Err(fail(format!(
                "no progress after {MAX_TRANSITIONS} transitions — livelock"
            )));
        }

        match event {
            None => {
                let plan = &sc.jobs[next_submission];
                let (id, starts) = core.submit(plan.spec.clone(), now);
                ids[next_submission] = Some(id);
                next_submission += 1;
                register(&mut live, &starts, sc, &ids, now);
            }
            Some(id) => checkin(&mut core, sc, &ids, &mut live, id, now)?,
        }
        oracle::check_invariants(&core).map_err(fail)?;
    }

    let need: BTreeMap<JobId, usize> = ids
        .iter()
        .zip(&sc.jobs)
        .filter_map(|(id, p)| id.map(|id| (id, p.spec.initial.procs())))
        .collect();
    oracle::check_trace(&core, core.events(), &need, sc.policy).map_err(fail)?;
    Ok(stats(transitions, core.events()))
}

/// Process one application check-in, firing any due fault.
fn checkin(
    core: &mut SchedulerCore,
    sc: &Scenario,
    ids: &[Option<JobId>],
    live: &mut BTreeMap<JobId, Live>,
    id: JobId,
    now: f64,
) -> Result<(), String> {
    let (plan_idx, checkins, armed) = {
        let l = live.get_mut(&id).expect("checkin for live job");
        l.checkins += 1;
        (l.plan, l.checkins, l.expand_fault_armed)
    };
    let plan = &sc.jobs[plan_idx];

    // A job cancelled at an earlier check-in comes back one more time to
    // pick up its Terminate directive, like a real driver would.
    let config = match core.job(id).map(|r| r.state.clone()) {
        Some(JobState::Running { config }) => config,
        _ => {
            let (d, starts) = core.resize_point(id, 0.0, 0.0, now);
            register(live, &starts, sc, ids, now);
            if d != Directive::Terminate {
                return Err(format!("{id}: expected Terminate after cancel, got {d:?}"));
            }
            live.remove(&id);
            return Ok(());
        }
    };

    match plan.fault {
        Some(Fault::FailAtCheckin(k)) if k == checkins => {
            let starts = core.on_failed(id, "injected node failure".into(), now);
            register(live, &starts, sc, ids, now);
            live.remove(&id);
            return Ok(());
        }
        Some(Fault::CancelAtCheckin(k)) if k == checkins => {
            let starts = core.cancel(id, now);
            register(live, &starts, sc, ids, now);
            // One more check-in to receive Terminate.
            live.get_mut(&id).expect("still live").next_checkin = now + 0.01;
            return Ok(());
        }
        _ => {}
    }

    let iter_time = plan.work / config.procs() as f64;
    let (directive, starts) = core.resize_point(id, iter_time, 0.0, now);
    register(live, &starts, sc, ids, now);
    if let Directive::Expand { .. } = directive {
        if armed && matches!(plan.fault, Some(Fault::ExpandFailure)) {
            let starts = core.on_expand_failed(id, now);
            register(live, &starts, sc, ids, now);
            live.get_mut(&id).expect("still live").expand_fault_armed = false;
        }
    }

    if checkins >= plan.spec.iterations {
        let starts = core.on_finished(id, now);
        register(live, &starts, sc, ids, now);
        live.remove(&id);
    } else {
        let procs = match core.job(id).map(|r| r.state.clone()) {
            Some(JobState::Running { config }) => config.procs(),
            _ => config.procs(),
        };
        live.get_mut(&id).expect("still live").next_checkin = now + plan.work / procs as f64;
    }
    Ok(())
}

/// Record scheduler-started jobs as live applications.
fn register(
    live: &mut BTreeMap<JobId, Live>,
    starts: &[StartAction],
    sc: &Scenario,
    ids: &[Option<JobId>],
    now: f64,
) {
    for s in starts {
        let plan = ids
            .iter()
            .position(|i| *i == Some(s.job))
            .expect("started job was submitted");
        let work = sc.jobs[plan].work;
        live.insert(
            s.job,
            Live {
                plan,
                next_checkin: now + work / s.config.procs() as f64,
                checkins: 0,
                expand_fault_armed: true,
            },
        );
    }
}

fn stats(transitions: usize, events: &[reshape_core::SchedEvent]) -> RunStats {
    let mut st = RunStats {
        transitions,
        ..Default::default()
    };
    for e in events {
        match e.kind {
            EventKind::Started { .. } => st.starts += 1,
            EventKind::Expanded { .. } => st.expansions += 1,
            EventKind::Shrunk { .. } => st.shrinks += 1,
            EventKind::ExpandFailed { .. } => st.expand_failures += 1,
            EventKind::Failed { .. } => st.job_failures += 1,
            EventKind::Cancelled => st.cancellations += 1,
            _ => {}
        }
    }
    st
}
