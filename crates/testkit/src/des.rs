//! DES-backed scenario executor: the same seeded workloads, fault
//! schedules, and oracles as [`crate::harness::Driver`], driven by the
//! discrete-event queue from `reshape-clustersim` instead of the legacy
//! scan over pending events.
//!
//! The legacy driver recomputes "earliest of the next submission or the
//! earliest check-in, ties to the submission then to the lowest job id" on
//! every step. [`DesHarness`] encodes exactly that order on
//! [`EventQueue::push_keyed`]:
//!
//! * every submission is queued up-front at its arrival time with key `0`
//!   (arrivals are non-decreasing and pushed in index order, so the FIFO
//!   `seq` tie keeps submissions in submission order);
//! * a check-in for job `j` is queued with key `1 + j.0` — job ids start
//!   at 1, so any simultaneous submission outranks it, and simultaneous
//!   check-ins drain lowest-id first.
//!
//! A job has exactly one *valid* pending check-in at a time; re-pacing
//! (cancel → `now + 0.01`, hang → watchdog deadline, node loss → survivor
//! pace) bumps a per-job generation counter, and pops whose generation is
//! stale are skipped without counting as transitions. The equivalence is
//! proven by `tests/des_sweep.rs`: the full 256-seed sweep must produce
//! identical [`RunStats`] and bitwise-identical core snapshots from both
//! executors.

use std::collections::BTreeMap;

use reshape_clustersim::EventQueue;
use reshape_core::{Directive, JobId, JobState, SchedulerCore, StartAction};

use crate::harness::{stats, RunStats, MAX_TRANSITIONS, WATCHDOG_DEADLINE};
use crate::oracle;
use crate::scenario::{generate, Fault, Scenario};

/// One event on the harness clock.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Submit scenario job `index`.
    Submit(usize),
    /// Check-in (or watchdog deadline) for a running job. `gen` is the
    /// pacing generation it was scheduled under; a mismatch means the job
    /// was re-paced (or removed) after this event was queued, and the pop
    /// is ignored.
    Checkin { job: JobId, gen: u64 },
}

/// Per-running-job bookkeeping of the simulated application side.
struct Live {
    plan: usize,
    checkins: usize,
    expand_fault_armed: bool,
    hung: bool,
    /// Pacing generation of the job's one valid pending check-in.
    gen: u64,
}

/// [`crate::harness::Driver`] on the DES event queue. Same construction
/// shape: [`DesHarness::new`] takes a scenario and a caller-prepared core,
/// [`DesHarness::step`] performs one oracle-checked transition,
/// [`DesHarness::finish`] drains the run and applies the trace oracle.
pub struct DesHarness<'a> {
    sc: &'a Scenario,
    core: SchedulerCore,
    live: BTreeMap<JobId, Live>,
    ids: Vec<Option<JobId>>,
    queue: EventQueue<Ev>,
    transitions: usize,
    hangs_injected: usize,
    watchdog_kills: usize,
    node_losses_survived: usize,
}

impl<'a> DesHarness<'a> {
    pub fn new(sc: &'a Scenario, core: SchedulerCore) -> Self {
        let mut queue = EventQueue::new();
        for (i, plan) in sc.jobs.iter().enumerate() {
            queue.push_keyed(plan.arrival, 0, Ev::Submit(i));
        }
        DesHarness {
            sc,
            core,
            live: BTreeMap::new(),
            ids: vec![None; sc.jobs.len()],
            queue,
            transitions: 0,
            hangs_injected: 0,
            watchdog_kills: 0,
            node_losses_survived: 0,
        }
    }

    /// Transitions executed so far (stale pops excluded).
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Execute one transition. `Ok(true)` means progress was made,
    /// `Ok(false)` means the event queue is drained.
    pub fn step(&mut self) -> Result<bool, String> {
        loop {
            let Some((now, ev)) = self.queue.pop() else {
                return Ok(false);
            };
            match ev {
                Ev::Submit(index) => {
                    self.transition_guard()?;
                    let plan = &self.sc.jobs[index];
                    let (id, starts) = self.core.submit(plan.spec.clone(), now);
                    self.ids[index] = Some(id);
                    self.register(&starts, now);
                    break;
                }
                Ev::Checkin { job, gen } => {
                    // Stale pacing generation: the job was re-paced or went
                    // terminal after this event was queued.
                    if self.live.get(&job).is_none_or(|l| l.gen != gen) {
                        continue;
                    }
                    self.transition_guard()?;
                    self.checkin(job, now)?;
                    break;
                }
            }
        }
        oracle::check_invariants(&self.core).map_err(|e| self.fail(e))?;
        Ok(true)
    }

    /// Run the remaining transitions and the end-of-run trace oracle.
    /// Returns the statistics and the final core.
    pub fn finish(mut self) -> Result<(RunStats, SchedulerCore), String> {
        while self.step()? {}
        let need: BTreeMap<JobId, usize> = self
            .ids
            .iter()
            .zip(&self.sc.jobs)
            .filter_map(|(id, p)| id.map(|id| (id, p.spec.initial.procs())))
            .collect();
        oracle::check_trace(&self.core, self.core.events(), &need, self.sc.policy)
            .map_err(|e| self.fail(e))?;
        let mut st = stats(self.transitions, self.core.events());
        st.hangs_injected = self.hangs_injected;
        st.watchdog_kills = self.watchdog_kills;
        if st.node_losses_survived != self.node_losses_survived {
            return Err(self.fail(format!(
                "node-loss accounting diverged: {} reported, {} in the trace",
                self.node_losses_survived, st.node_losses_survived
            )));
        }
        Ok((st, self.core))
    }

    fn transition_guard(&mut self) -> Result<(), String> {
        self.transitions += 1;
        if self.transitions > MAX_TRANSITIONS {
            return Err(self.fail(format!(
                "no progress after {MAX_TRANSITIONS} transitions — livelock"
            )));
        }
        Ok(())
    }

    fn fail(&self, msg: String) -> String {
        format!("seed {}: {}", self.sc.seed, msg)
    }

    /// Re-pace `id`: bump its generation and queue the one valid pending
    /// check-in at `at`, ranked below simultaneous submissions and among
    /// simultaneous check-ins by job id.
    fn pace(&mut self, id: JobId, at: f64) {
        let l = self.live.get_mut(&id).expect("pacing a live job");
        l.gen += 1;
        let gen = l.gen;
        self.queue.push_keyed(at, 1 + id.0, Ev::Checkin { job: id, gen });
    }

    /// Record scheduler-started jobs as live applications and queue their
    /// first check-ins.
    fn register(&mut self, starts: &[StartAction], now: f64) {
        for s in starts {
            let plan = self
                .ids
                .iter()
                .position(|i| *i == Some(s.job))
                .expect("started job was submitted");
            let work = self.sc.jobs[plan].work;
            self.live.insert(
                s.job,
                Live {
                    plan,
                    checkins: 0,
                    expand_fault_armed: true,
                    hung: false,
                    gen: 0,
                },
            );
            self.pace(s.job, now + work / s.config.procs() as f64);
        }
    }

    /// Process one application check-in (or watchdog deadline), firing any
    /// due fault. Mirrors `Driver::checkin` transition for transition.
    fn checkin(&mut self, id: JobId, now: f64) -> Result<(), String> {
        let (plan_idx, checkins, armed, hung) = {
            let l = self.live.get_mut(&id).expect("checkin for live job");
            if !l.hung {
                l.checkins += 1;
            }
            (l.plan, l.checkins, l.expand_fault_armed, l.hung)
        };
        let plan = &self.sc.jobs[plan_idx];

        if hung {
            let starts = self
                .core
                .on_failed(id, "hung: missed watchdog heartbeat deadline".into(), now);
            self.live.remove(&id);
            self.register(&starts, now);
            self.watchdog_kills += 1;
            return Ok(());
        }

        // A job cancelled at an earlier check-in comes back one more time to
        // pick up its Terminate directive, like a real driver would.
        let config = match self.core.job(id).map(|r| r.state.clone()) {
            Some(JobState::Running { config }) => config,
            _ => {
                let (d, starts) = self.core.resize_point(id, 0.0, 0.0, now);
                self.register(&starts, now);
                if d != Directive::Terminate {
                    return Err(format!("{id}: expected Terminate after cancel, got {d:?}"));
                }
                self.live.remove(&id);
                return Ok(());
            }
        };

        match plan.fault {
            Some(Fault::FailAtCheckin(k)) if k == checkins => {
                let starts = self.core.on_failed(id, "injected node failure".into(), now);
                self.live.remove(&id);
                self.register(&starts, now);
                return Ok(());
            }
            Some(Fault::CancelAtCheckin(k)) if k == checkins => {
                let starts = self.core.cancel(id, now);
                self.register(&starts, now);
                // One more check-in to receive Terminate.
                self.pace(id, now + 0.01);
                return Ok(());
            }
            Some(Fault::HangAtCheckin(k)) if k == checkins => {
                self.live.get_mut(&id).expect("still live").hung = true;
                self.pace(id, now + WATCHDOG_DEADLINE);
                self.hangs_injected += 1;
                return Ok(());
            }
            Some(Fault::NodeLoss { checkin: k, buddy_intact }) if k == checkins => {
                if buddy_intact && config.procs() > 1 {
                    let dead = [*self
                        .core
                        .job(id)
                        .expect("running job holds slots")
                        .slots
                        .last()
                        .expect("running job holds at least one slot")];
                    let to = reshape_core::ProcessorConfig::new(1, config.procs() - 1);
                    let starts = self.core.on_node_failed(id, &dead, to, now);
                    self.register(&starts, now);
                    self.node_losses_survived += 1;
                    self.pace(id, now + plan.work / to.procs() as f64);
                } else {
                    let starts =
                        self.core
                            .on_failed(id, "node lost with its buddy".into(), now);
                    self.live.remove(&id);
                    self.register(&starts, now);
                }
                return Ok(());
            }
            _ => {}
        }

        let iter_time = plan.work / config.procs() as f64;
        let (directive, starts) = self.core.resize_point(id, iter_time, 0.0, now);
        self.register(&starts, now);
        if let Directive::Expand { .. } = directive {
            if armed && matches!(plan.fault, Some(Fault::ExpandFailure)) {
                let starts = self.core.on_expand_failed(id, now);
                self.register(&starts, now);
                self.live.get_mut(&id).expect("still live").expand_fault_armed = false;
            }
        }

        if checkins >= plan.spec.iterations {
            let starts = self.core.on_finished(id, now);
            self.live.remove(&id);
            self.register(&starts, now);
        } else {
            let procs = match self.core.job(id).map(|r| r.state.clone()) {
                Some(JobState::Running { config }) => config.procs(),
                _ => config.procs(),
            };
            self.pace(id, now + plan.work / procs as f64);
        }
        Ok(())
    }
}

/// Expand `seed` and drive it through the DES executor. The counterpart of
/// [`crate::harness::run_seed`].
pub fn run_seed_des(seed: u64) -> Result<RunStats, String> {
    let sc = generate(seed);
    let core = SchedulerCore::new(sc.total_procs, sc.policy);
    DesHarness::new(&sc, core).finish().map(|(st, _)| st)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_executor_completes_a_seeded_run() {
        let st = run_seed_des(42).expect("clean run");
        assert!(st.transitions > 0);
        assert!(st.starts > 0);
    }

    #[test]
    fn stale_checkins_do_not_count_as_transitions() {
        // A cancel re-paces the job to now + 0.01, invalidating the
        // previously queued check-in; the stale pop must be skipped
        // silently, so transition counts match the legacy driver's.
        for seed in 0..64 {
            let sc = generate(seed);
            let a = crate::harness::Driver::new(&sc, SchedulerCore::new(sc.total_procs, sc.policy))
                .finish()
                .expect("legacy run");
            let b = DesHarness::new(&sc, SchedulerCore::new(sc.total_procs, sc.policy))
                .finish()
                .expect("DES run");
            assert_eq!(a.0.transitions, b.0.transitions, "seed {seed}");
        }
    }
}
