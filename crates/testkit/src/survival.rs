//! Seeded end-to-end survival drills.
//!
//! The scheduler-level sweep ([`crate::harness`]) models node losses as
//! `on_node_failed` calls; these drills run the real thing: a survivable
//! job on a simulated cluster ([`reshape_mpisim::Universe`]) with a node
//! crash injected at a seeded virtual time, driven by the full runtime
//! (heartbeat detection, buddy restore, rollback + replay, forced shrink).
//!
//! Two oracles:
//!
//! * [`run_survival`] — the job survives **iff** the dead rank's buddy is
//!   intact, and a surviving run's final matrix is *bitwise identical* to
//!   a fault-free run of the same seed (rollback + deterministic replay
//!   reproduce the exact floats).
//! * [`run_txn_rollback`] — a rank killed *mid-redistribution* aborts the
//!   transactional executor on every survivor with the old layout
//!   bit-for-bit intact (the differential check on the rolled-back state).
//!
//! Failures carry the seed; reproduce with
//! `TESTKIT_SEED=<seed> cargo test -p reshape-testkit survival_seed_from_env`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_core::driver::AppDef;
use reshape_core::runtime::ReshapeRuntime;
use reshape_core::{JobSpec, JobState, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape_mpisim::{Comm, NetModel, NodeId, Universe};
use reshape_redist::{plan_2d, txn_redistribute_2d};

use crate::rng::SplitMix64;

/// What one survival drill did.
#[derive(Clone, Copy, Debug)]
pub struct SurvivalReport {
    /// The drill's node loss left the victim's buddy alive.
    pub buddy_intact: bool,
    /// The job reached `Finished` (always equals `buddy_intact` — the
    /// oracle inside [`run_survival`] enforces it).
    pub survived: bool,
}

/// Drive one seeded survivable job through a node crash and judge the
/// outcome. See the module docs for the oracle.
pub fn run_survival(seed: u64) -> Result<SurvivalReport, String> {
    let mut rng = SplitMix64::new(seed);
    let n = *rng.pick(&[8usize, 12, 16]);
    let iters = rng.usize_range(4, 8);
    let victim = rng.usize_range(0, 3);
    let buddy_intact = rng.chance(2, 3);
    // The 2x2 job advances 10/4 virtual seconds per iteration; land the
    // crash squarely inside a seeded mid-run iteration.
    let crash_iter = rng.usize_range(1, iters - 2);
    let crash_at = (crash_iter as f64 + 0.5) * 2.5;
    let fail = |msg: String| {
        dump_fault_schedule(
            &format!("survival-seed-{seed}.txt"),
            &format!(
                "kind=survival\nseed={seed}\nn={n}\niters={iters}\nvictim={victim}\n\
                 buddy_intact={buddy_intact}\ncrash_at={crash_at}\nerror={msg}\n"
            ),
        );
        format!("seed {seed} (survival): {msg}")
    };

    // Fault-free baseline of the same app: the survival oracle demands
    // bitwise equality against it.
    let baseline = run_job(n, iters, &[])
        .map_err(|e| fail(format!("baseline run failed: {e}")))?
        .1;
    if baseline.len() != n * n {
        return Err(fail("baseline gather incomplete".into()));
    }

    let mut crashes = vec![(victim as u32, crash_at)];
    if !buddy_intact {
        // The ring buddy of old rank `r` is `(r + 1) % 4`; with one slot
        // per node and slots granted in rank order, rank and node indices
        // coincide.
        crashes.push((((victim + 1) % 4) as u32, crash_at));
    }
    let (state, survived_mat) =
        run_job(n, iters, &crashes).map_err(|e| fail(format!("faulted run failed: {e}")))?;

    let survived = matches!(state, JobState::Finished { .. });
    if survived != buddy_intact {
        return Err(fail(format!(
            "survival oracle violated: buddy_intact={buddy_intact} but job ended {state:?}"
        )));
    }
    if buddy_intact {
        if survived_mat.len() != baseline.len() {
            return Err(fail(format!(
                "final gather has {} elements, baseline {}",
                survived_mat.len(),
                baseline.len()
            )));
        }
        for (i, (a, b)) in survived_mat.iter().zip(&baseline).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(fail(format!(
                    "element {i} diverged after recovery: {a} != {b}"
                )));
            }
        }
    } else if !matches!(state, JobState::Failed { .. }) {
        return Err(fail(format!("expected Failed after losing a buddy pair, got {state:?}")));
    }
    Ok(SurvivalReport {
        buddy_intact,
        survived,
    })
}

/// Run one survivable 2x2 job on a 4-node universe, crashing the given
/// nodes, and return its terminal state plus the matrix gathered on the
/// final iteration (empty when the job died first). The app evolves every
/// element deterministically per iteration, so a botched rollback/replay
/// shows up in the data.
fn run_job(n: usize, iters: usize, crashes: &[(u32, f64)]) -> Result<(JobState, Vec<f64>), String> {
    let uni = Universe::new(4, 1, NetModel::ideal());
    for &(node, at) in crashes {
        uni.inject_node_crash(NodeId(node), at);
    }
    let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "survival-drill",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(2, 2),
        iters,
    )
    .static_job()
    .survivable();
    let captured: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let cap = Arc::clone(&captured);
    let app = AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                (i * n + j) as f64
            })]
        },
        move |grid, mats, it| {
            for v in mats[0].local_data_mut() {
                *v = *v * 1.5 + (it + 1) as f64;
            }
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm().advance(10.0 / p);
            if it + 1 == iters {
                if let Some(full) = mats[0].gather(grid) {
                    *cap.lock().expect("capture mutex") = full;
                }
            }
        },
    );
    let job = rt.submit(spec, app);
    let state = rt
        .wait_for(job, Duration::from_secs(60))
        .map_err(|e| format!("job never terminated: {e:?}"))?;
    // The pool must drain completely: survivors' slots at termination plus
    // the dead slots at the forced shrink.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if rt.core().lock().idle_procs() == 4 {
            break;
        }
        if std::time::Instant::now() >= deadline {
            return Err("resources never reclaimed".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let full = captured.lock().expect("capture mutex").clone();
    Ok((state, full))
}

/// Kill a seeded rank mid-redistribution and demand the transactional
/// executor aborts with every survivor's source panel bitwise intact.
pub fn run_txn_rollback(seed: u64) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed ^ 0x7D15_7A11);
    let m = rng.usize_range(8, 20);
    let n = rng.usize_range(8, 20);
    let mb = rng.usize_range(1, 3);
    let nb = rng.usize_range(1, 3);
    let dst_grid = *rng.pick(&[(1usize, 2usize), (2, 1), (1, 3), (3, 1), (1, 4)]);
    let victim = rng.usize_range(0, 3);
    let fail = |msg: String| {
        dump_fault_schedule(
            &format!("txn-rollback-seed-{seed}.txt"),
            &format!(
                "kind=txn-rollback\nseed={seed}\nm={m}\nn={n}\nmb={mb}\nnb={nb}\n\
                 dst_grid={dst_grid:?}\nvictim={victim}\nerror={msg}\n"
            ),
        );
        format!("seed {seed} (txn-rollback): {msg}")
    };

    let uni = Universe::new(4, 1, NetModel::ideal());
    // Crash at t=0: the victim dies at its first communicator checkpoint,
    // mid-plan, after some peers may already hold its payloads.
    uni.inject_node_crash(NodeId(victim as u32), 0.0);
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let viol = Arc::clone(&violations);
    let h = uni.launch(4, None, "txn-rollback", move |comm| {
        let s = Descriptor::new(m, n, mb, nb, 2, 2);
        let d = Descriptor::new(m, n, mb, nb, dst_grid.0, dst_grid.1);
        let plan = plan_2d(s, d);
        let me = comm.rank();
        let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 1_000_003 + j) as f64);
        let before: Vec<u64> = src.local_data().iter().map(|v| v.to_bits()).collect();
        let res = txn_redistribute_2d(&comm, &plan, Some(&src));
        if me == victim {
            unreachable!("the victim crashes inside the executor");
        }
        let report = |msg: String| viol.lock().expect("violation mutex").push(msg);
        if res.is_ok() {
            report(format!("rank {me}: transaction committed despite the death"));
        }
        let after: Vec<u64> = src.local_data().iter().map(|v| v.to_bits()).collect();
        if before != after {
            report(format!("rank {me}: abort did not leave the old layout intact"));
        }
        survivor_sync(&comm, &(0..4).filter(|&r| r != victim).collect::<Vec<_>>());
    });
    let failed = h
        .join()
        .into_iter()
        .filter(|(_, s)| matches!(s, reshape_mpisim::ProcStatus::Failed(_)))
        .count();
    uni.clear_faults();
    if failed != 1 {
        return Err(fail(format!("{failed} processes died; expected only the victim")));
    }
    let violations = violations.lock().expect("violation mutex");
    if let Some(v) = violations.first() {
        return Err(fail(v.clone()));
    }
    Ok(())
}

/// When `TESTKIT_FAULT_DIR` is set, persist the failing drill's fault
/// schedule there so CI can upload it as an artifact. Best-effort: a
/// write failure must never mask the drill's own error.
fn dump_fault_schedule(name: &str, contents: &str) {
    let Ok(dir) = std::env::var("TESTKIT_FAULT_DIR") else {
        return;
    };
    let dir = std::path::Path::new(&dir);
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(name), contents);
}

/// Keep survivors registered until everyone has finished asserting, so
/// none of them looks dead to a peer still mid-check.
fn survivor_sync(comm: &Comm, survivors: &[usize]) {
    const TAG_SYNC: u32 = 7_700_000;
    let me = comm.rank();
    let root = survivors[0];
    let mut buf: Vec<u64> = Vec::new();
    if me == root {
        for &r in &survivors[1..] {
            comm.recv_into(r, TAG_SYNC, &mut buf);
        }
        for &r in &survivors[1..] {
            comm.send(r, TAG_SYNC, &[1u64]);
        }
    } else {
        comm.send(root, TAG_SYNC, &[me as u64]);
        comm.recv_into(root, TAG_SYNC, &mut buf);
    }
}
