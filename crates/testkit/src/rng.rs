//! SplitMix64: the seed-expansion generator of Steele, Lea & Flood
//! ("Fast splittable pseudorandom number generators", OOPSLA 2014). One
//! `u64` of state, full period, and trivially reproducible from a printed
//! seed — exactly what a failure report needs.

/// Deterministic 64-bit generator. Every harness artifact (workload, fault
/// schedule, matrix contents) derives from one of these, so a failing run
/// is reproduced by its seed alone.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Modulo bias is irrelevant
    /// at the ranges the generators use (≤ a few hundred).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Bernoulli draw with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.range(0, den - 1) < num
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_range(0, items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }
}
