//! Partition chaos drills: the federation sweep of [`crate::federation`]
//! with seeded **network partitions** layered on top — scripted splits
//! that silently drop cross-group lease traffic, suspicion timeouts short
//! enough that lenders actually fence, and (on half the seeds) exponential
//! retransmit pacing on the bus.
//!
//! The drills reuse the global ledger oracle
//! ([`crate::federation::check_ledger`]), which under partitions also
//! enforces the epoch rules: a lender's fencing epoch never regresses
//! below a lease it minted, a fenced lease proves the epoch advanced, the
//! borrower's journaled mint epoch matches the grant, and **no attachment
//! created at or after a fence may live**.
//! [`run_planted_stale_epoch_grant`] proves that last rule has teeth: a
//! backdoor attaches a stale-epoch grant across the fence and the oracle
//! must flag it.
//!
//! Every partition artifact derives from its own [`SplitMix64`] streams
//! (`seed ^ 0xFED0_0006` for schedules, `seed ^ 0xFED0_0007` for
//! retransmit pacing), so the partition-free federation scenarios of
//! [`crate::federation::generate_federation`] stay bitwise identical.

use reshape_core::{Backoff, JobSpec, ProcessorConfig, TopologyPref};
use reshape_federation::sim::{run_with_fed, FedSimConfig, PartitionPlan};
use reshape_federation::{Federation, FederationConfig, TenantConfig};

use crate::federation::{check_ledger, generate_federation, FedChaosReport};
use crate::rng::SplitMix64;

/// Generate a seeded federation scenario with partitions: the base
/// scenario of [`generate_federation`] (same seed, bitwise identical),
/// plus 1–3 scripted bipartitions whose windows straddle the suspicion
/// timeout, a suspicion short enough to fire inside those windows, and
/// exponential retransmit pacing on half the seeds.
pub fn generate_partition(seed: u64) -> FedSimConfig {
    let mut cfg = generate_federation(seed);
    let n_shards = cfg.shard_procs.len();

    let mut part = SplitMix64::new(seed ^ 0xFED0_0006);
    // Short suspicion so fences fire well inside partition windows; still
    // long enough that transient splits heal un-fenced on some seeds.
    cfg.lease.suspicion = part.f64_range(2.0, 8.0);
    let n_parts = part.usize_range(1, 3);
    for _ in 0..n_parts {
        // A random bipartition of the shards; a degenerate draw (everyone
        // on one side) falls back to isolating shard 0.
        let mut g0 = Vec::new();
        let mut g1 = Vec::new();
        for s in 0..n_shards {
            if part.chance(1, 2) {
                g0.push(s);
            } else {
                g1.push(s);
            }
        }
        if g0.is_empty() || g1.is_empty() {
            g0 = vec![0];
            g1 = (1..n_shards).collect();
        }
        let t_start = part.f64_range(1.0, 30.0);
        let duration = part.f64_range(1.0, 30.0);
        cfg.partitions.push(PartitionPlan {
            groups: vec![g0, g1],
            t_start,
            t_heal: t_start + duration,
        });
    }

    let mut retx = SplitMix64::new(seed ^ 0xFED0_0007);
    if retx.chance(1, 2) {
        cfg.bus.retx_backoff = Some(Backoff {
            base: cfg.bus.rto,
            factor: retx.f64_range(1.3, 2.5),
            max: cfg.bus.rto * retx.f64_range(3.0, 8.0),
            jitter_frac: retx.f64_range(0.0, 0.2),
        });
    }
    cfg
}

/// Run one seeded partition chaos drill: the federation scenario with
/// partitions injected, the global ledger oracle (epoch rules included)
/// evaluated after **every** event, and the end-of-run acceptance of the
/// federation sweep — terminal accounting exact, every WAL replay equal
/// to its crash snapshot, every lease resolved, full quiescence after the
/// last heal.
pub fn run_partition_chaos(seed: u64) -> Result<FedChaosReport, String> {
    let cfg = generate_partition(seed);
    let schedule = format!("{cfg:#?}");

    let mut first_err: Option<String> = None;
    let mut wal_dump: Vec<(usize, String)> = Vec::new();
    let mut checks = 0u64;
    let mut quiesced = false;
    let (report, fed) = run_with_fed(cfg, |fed, t| {
        checks += 1;
        quiesced = fed.quiesced();
        if first_err.is_some() {
            return;
        }
        if let Err(e) = check_ledger(fed) {
            first_err = Some(format!("t={t:.3} {e}"));
            for sh in fed.shards() {
                let text = match sh.core().and_then(|c| c.wal()) {
                    Some(w) => w.encode(),
                    None => sh.down_wal().unwrap_or_default().to_string(),
                };
                wal_dump.push((sh.id(), text));
            }
        }
    });
    let flightrec = fed.flightrec().dump_jsonl();

    if let Some(e) = first_err {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!("seed {seed}: ledger violation: {e}"));
    }
    if !report.recoveries_matched {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: a WAL replay diverged from its crash snapshot"
        ));
    }
    let terminal =
        report.finished + report.failed + report.cancelled + report.evict_failed + report.shed;
    if terminal != report.submitted {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: accounting leak: {terminal} terminal of {} submitted ({report:?})",
            report.submitted
        ));
    }
    if report.leases_granted != report.leases_reclaimed {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: {} leases granted but {} reclaimed",
            report.leases_granted, report.leases_reclaimed
        ));
    }
    if report.partitions_started != report.partitions_healed {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: {} partitions started but {} healed",
            report.partitions_started, report.partitions_healed
        ));
    }
    let per_kind = report.heal_repairs_recovery_fixup
        + report.heal_repairs_evict_stale_borrow
        + report.heal_repairs_return_escrow;
    if per_kind != report.heal_repairs {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!(
            "seed {seed}: heal-repair kinds sum to {per_kind} but {} repairs were journaled",
            report.heal_repairs
        ));
    }
    if !quiesced {
        dump_artifacts(seed, &schedule, &wal_dump, &flightrec);
        return Err(format!("seed {seed}: federation did not quiesce after the heal"));
    }
    Ok(FedChaosReport {
        report,
        ledger_checks: checks,
        quiesced,
    })
}

/// When `TESTKIT_FAULT_DIR` is set, persist the failing run's fault (and
/// partition) schedule, WAL streams, and flight-recorder dump for offline
/// replay.
fn dump_artifacts(seed: u64, schedule: &str, wals: &[(usize, String)], flightrec: &str) {
    let Ok(dir) = std::env::var("TESTKIT_FAULT_DIR") else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(format!("{dir}/partition-seed-{seed}.schedule.txt"), schedule);
    for (shard, text) in wals {
        let _ = std::fs::write(
            format!("{dir}/partition-seed-{seed}-shard-{shard}.wal"),
            text,
        );
    }
    let _ = std::fs::write(
        format!("{dir}/partition-seed-{seed}.flightrec.jsonl"),
        flightrec,
    );
}

// ----------------------------------------------------------------------
// Oracle sensitivity: the planted stale-epoch grant
// ----------------------------------------------------------------------

/// Drive a two-shard federation through grant → partition → fence → heal
/// with the stale-epoch backdoor armed: the borrower attaches the grant
/// when it is finally redelivered after the heal, even though the lender
/// fenced the lease long before. Returns the violation the ledger oracle
/// raised (it must mention the epoch fence), or `Err` if the oracle never
/// noticed.
pub fn run_planted_stale_epoch_grant() -> Result<String, String> {
    let tenants = vec![TenantConfig::new(64, 1.0, 16)];
    let mut fcfg = FederationConfig::new(vec![4, 4], tenants);
    fcfg.lease.min_spare = 0;
    fcfg.lease.term = 60.0;
    fcfg.lease.grace = 30.0;
    fcfg.lease.suspicion = 5.0;
    fcfg.lease.retry_backoff = 1000.0; // exactly one grant in the run
    let mut fed = Federation::new(fcfg);
    fed.chaos_plant_stale_epoch_attach();

    // Sever the shards before the grant is minted: the Grant frame dies on
    // the wire and keeps retransmitting into the partition.
    fed.inject_partition(vec![vec![0], vec![1]], 0.5, 20.0);
    fed.run_timers(0.6);

    let spec = |name: &str, procs| {
        JobSpec::new(
            name,
            TopologyPref::AnyCount {
                min: 1,
                max: 64,
                step: 1,
            },
            ProcessorConfig::linear(procs),
            100,
        )
    };
    fed.submit(0, 0, spec("fill", 2), 0.7);
    fed.submit(0, 1, spec("big", 6), 1.0);
    if fed.leases().next().is_none() {
        return Err("scenario failed to mint a lease".into());
    }
    if let Err(e) = check_ledger(&fed) {
        return Ok(e);
    }
    // Pump timers through fence (t≈6) and heal (t=20): the redelivered
    // grant attaches across the fence and the oracle must flag it.
    let mut t = 0.0;
    for _ in 0..512 {
        let Some(next) = fed.next_timer() else { break };
        t = next.max(t);
        fed.run_timers(t);
        if let Err(e) = check_ledger(&fed) {
            return Ok(e);
        }
        if t > 40.0 {
            break;
        }
    }
    Err("ledger oracle never flagged the planted stale-epoch attach".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_adds_partitions() {
        let a = format!("{:?}", generate_partition(3));
        let b = format!("{:?}", generate_partition(3));
        assert_eq!(a, b);
        let cfg = generate_partition(3);
        assert!(!cfg.partitions.is_empty());
        for p in &cfg.partitions {
            assert!(p.t_heal > p.t_start);
            assert!(p.groups.iter().all(|g| !g.is_empty()));
        }
    }

    #[test]
    fn partition_streams_do_not_perturb_the_base_scenario() {
        // Everything except the partition-owned knobs (schedules,
        // suspicion, retransmit pacing) must be bitwise identical to the
        // partition-free generator on the same seed.
        for seed in [0u64, 7, 99] {
            let mut with = generate_partition(seed);
            let base = generate_federation(seed);
            with.partitions.clear();
            with.lease.suspicion = base.lease.suspicion;
            with.bus.retx_backoff = None;
            assert_eq!(format!("{with:?}"), format!("{base:?}"), "seed {seed}");
        }
    }

    #[test]
    fn one_partition_seed_end_to_end() {
        let rep = run_partition_chaos(11).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        assert!(rep.ledger_checks > 0);
        assert!(rep.quiesced);
    }

    #[test]
    fn planted_stale_epoch_attach_is_caught() {
        let msg = run_planted_stale_epoch_grant().expect("oracle must catch the stale attach");
        assert!(
            msg.contains("epoch fence"),
            "violation must name the epoch fence: {msg}"
        );
    }
}
