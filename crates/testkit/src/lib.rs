//! # reshape-testkit — deterministic verification harness
//!
//! Everything the fault-injection work needs to be *checked*, not just
//! exercised:
//!
//! * [`rng::SplitMix64`] — one-u64-seed generator; every artifact of a run
//!   derives from the seed, so failures reproduce from the printed seed.
//! * [`scenario`] — seeded workload + fault-schedule generation across the
//!   paper's application classes (grid / 1-D / master–worker, resizable
//!   and static) with fail/cancel/expansion-failure faults.
//! * [`oracle`] — the scheduler invariant oracle: no processor leaked or
//!   double-allocated, pool accounting exact, FCFS/backfill admission
//!   order respected, every job terminal and the cluster drained.
//! * [`harness`] — drives a [`reshape_core::SchedulerCore`] through a
//!   scenario, fires the faults, and runs the oracle after every
//!   transition; the step-able [`harness::Driver`] lets drills stop and
//!   splice in a different core mid-run.
//! * [`des`] — the same scenarios and oracles driven by the
//!   discrete-event queue from `reshape-clustersim`; `tests/des_sweep.rs`
//!   proves it transition-equivalent to [`harness::Driver`] across the
//!   full seed sweep.
//! * [`crashrestart`] — kills the scheduler at a seeded transition,
//!   recovers a fresh core from the write-ahead log's durable text form,
//!   asserts exact snapshot equality, and finishes the run on the
//!   recovered core demanding the uninterrupted run's final state.
//! * [`differential`] — runs the independent redistribution paths (planned
//!   / naive / general / checkpoint, 2-D and 1-D) on identical inputs and
//!   demands bitwise-equal results; under a dead rank, all fault-checked
//!   variants must abort without moving data.
//! * [`federation`] — multi-shard chaos drills: seeded federations (shard
//!   kills, lease expiries, wire chaos) checked after every transition by
//!   a global ledger oracle — every processor owned by exactly one shard
//!   or escrowed under exactly one lease, and every live lease journaled
//!   in the WALs that must know it; `tests/federation.rs` sweeps 256
//!   seeds and proves the oracle catches a planted double grant.
//! * [`partition`] — the federation drills under seeded **network
//!   partitions**: scripted splits sever the lease bus, suspicion
//!   timeouts make lenders bump their WAL-persisted epochs and fence
//!   outstanding leases, and anti-entropy digests reconcile the ledger at
//!   heal; the oracle additionally proves no lease is honored across an
//!   epoch fence, and `tests/partition.rs` proves it catches a planted
//!   stale-epoch attach.
//! * [`survival`] — end-to-end node-loss drills on the simulated cluster:
//!   a seeded crash mid-iteration must be survived iff the victim's buddy
//!   is intact (with the final matrix bitwise-equal to a fault-free run),
//!   and a seeded crash mid-redistribution must abort the transactional
//!   executor with the old layout bitwise intact.
//!
//! To reproduce a CI failure locally:
//!
//! ```text
//! TESTKIT_SEED=<printed seed> cargo test -p reshape-testkit seed_from_env
//! ```

pub mod crashrestart;
pub mod des;
pub mod differential;
pub mod federation;
pub mod harness;
pub mod oracle;
pub mod partition;
pub mod rng;
pub mod scenario;
pub mod survival;

pub use crashrestart::{run_crash_restart, CrashReport};
pub use des::{run_seed_des, DesHarness};
pub use federation::{
    check_ledger, generate_federation, run_federation_chaos, run_planted_double_grant,
    run_planted_double_grant_with_fed, FedChaosReport,
};
pub use harness::{run_scenario, run_scenario_on, run_seed, Driver, RunStats};
pub use partition::{generate_partition, run_partition_chaos, run_planted_stale_epoch_grant};
pub use oracle::{check_invariants, check_trace};
pub use rng::SplitMix64;
pub use scenario::{generate, Fault, JobPlan, Scenario};
pub use survival::{run_survival, run_txn_rollback, SurvivalReport};
