//! Differential redistribution checker.
//!
//! The redist crate ships four independent 2-D data paths (the paper's
//! contention-free schedule, the naive single-step baseline, the
//! generalized block-size-changing executor, and the checkpoint/restart
//! funnel) and two 1-D paths. For any source/destination layout they must
//! all produce the *bitwise identical* destination matrix — and under an
//! injected node death, all fault-checked variants must refuse to move a
//! single element.
//!
//! Each path runs in its own fresh [`Universe`] over identical seeded
//! inputs; destination panels are written into a shared full-matrix image
//! and the images are compared byte for byte.

use std::sync::{Arc, Mutex};

use reshape_blockcyclic::{Descriptor, DistMatrix, DistVector};
use reshape_mpisim::{NetModel, Universe};
use reshape_redist::{
    checkpoint_redistribute, plan_1d, plan_2d, plan_general_1d, plan_general_2d, plan_naive_2d,
    redistribute_1d, redistribute_2d, redistribute_general_1d, redistribute_general_2d,
    try_checkpoint_redistribute, try_redistribute_2d, try_redistribute_general_2d,
    CheckpointParams,
};

use crate::rng::SplitMix64;

/// One randomized 2-D layout pair. All four 2-D paths must agree on it.
#[derive(Clone, Copy, Debug)]
pub struct Case2d {
    pub m: usize,
    pub n: usize,
    pub mb: usize,
    pub nb: usize,
    pub src_grid: (usize, usize),
    pub dst_grid: (usize, usize),
}

/// Draw a 2-D case. Grids are kept ≤ 3×3 so a full differential sweep over
/// four paths stays fast; matrix shapes and block sizes are ragged on
/// purpose.
pub fn gen_case_2d(rng: &mut SplitMix64) -> Case2d {
    Case2d {
        m: rng.usize_range(4, 24),
        n: rng.usize_range(4, 24),
        mb: rng.usize_range(1, 4),
        nb: rng.usize_range(1, 4),
        src_grid: (rng.usize_range(1, 3), rng.usize_range(1, 3)),
        dst_grid: (rng.usize_range(1, 3), rng.usize_range(1, 3)),
    }
}

/// Deterministic element value — an injective function of the global
/// coordinates, so any misrouted element is detected.
fn value(gi: usize, gj: usize) -> u64 {
    (gi as u64) * 1_000_003 + gj as u64 + 1
}

/// Sentinel for "no path wrote this element".
const UNWRITTEN: u64 = u64::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Path2d {
    Planned,
    Naive,
    General,
    Checkpoint,
}

const ALL_2D: [Path2d; 4] = [
    Path2d::Planned,
    Path2d::Naive,
    Path2d::General,
    Path2d::Checkpoint,
];

/// Run one 2-D path to completion and return the assembled destination
/// image.
fn run_path_2d(case: &Case2d, which: Path2d) -> Vec<u64> {
    let (m, n, mb, nb) = (case.m, case.n, case.mb, case.nb);
    let (sg, dg) = (case.src_grid, case.dst_grid);
    let p = sg.0 * sg.1;
    let q = dg.0 * dg.1;
    let ranks = p.max(q);
    let image = Arc::new(Mutex::new(vec![UNWRITTEN; m * n]));
    let out = image.clone();
    let uni = Universe::new(ranks, 1, NetModel::ideal());
    uni.launch(ranks, None, "diff2d", move |comm| {
        let src_desc = Descriptor::new(m, n, mb, nb, sg.0, sg.1);
        let dst_desc = Descriptor::new(m, n, mb, nb, dg.0, dg.1);
        let me = comm.rank();
        let src = (me < p)
            .then(|| DistMatrix::from_fn(src_desc, me / sg.1, me % sg.1, value));
        let got: Option<DistMatrix<u64>> = match which {
            Path2d::Planned => redistribute_2d(&comm, &plan_2d(src_desc, dst_desc), src.as_ref()),
            Path2d::Naive => {
                redistribute_2d(&comm, &plan_naive_2d(src_desc, dst_desc), src.as_ref())
            }
            Path2d::General => {
                redistribute_general_2d(&comm, &plan_general_2d(src_desc, dst_desc), src.as_ref())
            }
            Path2d::Checkpoint => checkpoint_redistribute(
                &comm,
                src_desc,
                dst_desc,
                src.as_ref(),
                &CheckpointParams::default(),
                None,
            ),
        };
        if let Some(mat) = got {
            let mut buf = out.lock().expect("image lock");
            for li in 0..mat.local_rows() {
                let gi = dst_desc.local_to_global_row(li, mat.myrow);
                for lj in 0..mat.local_cols() {
                    let gj = dst_desc.local_to_global_col(lj, mat.mycol);
                    buf[gi * n + gj] = mat.get_local(li, lj);
                }
            }
        }
    })
    .join_ok();
    let img = image.lock().expect("image lock").clone();
    img
}

/// Run every 2-D path on `case` and demand bitwise-identical, complete,
/// correct destination images.
pub fn differential_2d(case: &Case2d) -> Result<(), String> {
    let expected: Vec<u64> = (0..case.m)
        .flat_map(|i| (0..case.n).map(move |j| value(i, j)))
        .collect();
    for which in ALL_2D {
        let img = run_path_2d(case, which);
        if img != expected {
            let bad = img
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .expect("images differ");
            return Err(format!(
                "{which:?} diverges on {case:?} at element ({}, {}): got {}, want {}",
                bad / case.n,
                bad % case.n,
                img[bad],
                expected[bad]
            ));
        }
    }
    Ok(())
}

/// 1-D differential: the table-based 1-D schedule against the generalized
/// 1-D executor, element-for-element.
pub fn differential_1d(n: usize, b: usize, p: usize, q: usize) -> Result<(), String> {
    let mut images: Vec<Vec<u64>> = Vec::new();
    for which in 0..2u8 {
        let image = Arc::new(Mutex::new(vec![UNWRITTEN; n]));
        let out = image.clone();
        let ranks = p.max(q);
        let uni = Universe::new(ranks, 1, NetModel::ideal());
        uni.launch(ranks, None, "diff1d", move |comm| {
            let me = comm.rank();
            let src =
                (me < p).then(|| DistVector::from_fn(n, b, me, p, |g| value(g, 0)));
            let got: Option<DistVector<u64>> = if which == 0 {
                redistribute_1d(&comm, &plan_1d(n, b, p, q), src.as_ref())
            } else {
                redistribute_general_1d(&comm, &plan_general_1d(n, b, p, b, q), src.as_ref())
            };
            if let Some(part) = got {
                let mut buf = out.lock().expect("image lock");
                for l in 0..part.local_len() {
                    buf[part.global_index(l)] = part.get_local(l);
                }
            }
        })
        .join_ok();
        let img = image.lock().expect("image lock").clone();
        images.push(img);
    }
    let expected: Vec<u64> = (0..n).map(|g| value(g, 0)).collect();
    for (i, img) in images.iter().enumerate() {
        if *img != expected {
            return Err(format!(
                "1-D path {i} diverges for n={n} b={b} p={p}->q={q}"
            ));
        }
    }
    Ok(())
}

/// Every fault-checked 2-D variant must abort — identically, and without
/// touching the source — when a rank in the layout is dead.
pub fn dead_rank_aborts_2d() -> Result<(), String> {
    #[derive(Clone, Copy)]
    enum TryPath {
        Planned,
        General,
        Checkpoint,
    }
    for (label, which) in [
        ("planned", TryPath::Planned),
        ("general", TryPath::General),
        ("checkpoint", TryPath::Checkpoint),
    ] {
        let verdicts = Arc::new(Mutex::new(Vec::<usize>::new()));
        let sink = verdicts.clone();
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "deadrank", move |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 4);
            let me = comm.rank();
            if me == 3 {
                return; // the injected death
            }
            while comm.rank_alive(3) {
                comm.advance(0.001);
            }
            let src = DistMatrix::from_fn(s, me / 2, me % 2, value);
            let snapshot: Vec<u64> = src.local_data().to_vec();
            let err = match which {
                TryPath::Planned => try_redistribute_2d(&comm, &plan_2d(s, d), Some(&src))
                    .expect_err("must abort"),
                TryPath::General => {
                    try_redistribute_general_2d(&comm, &plan_general_2d(s, d), Some(&src))
                        .expect_err("must abort")
                }
                TryPath::Checkpoint => try_checkpoint_redistribute(
                    &comm,
                    s,
                    d,
                    Some(&src),
                    &CheckpointParams::default(),
                    None,
                )
                .expect_err("must abort"),
            };
            assert_eq!(snapshot, src.local_data(), "abort moved data");
            sink.lock().expect("verdict lock").push(err.dead_rank);
            // Hold every survivor until all three have scanned liveness, so
            // a finished peer is not mistaken for a dead one.
            const TAG_SYNC: u32 = 7_700_000;
            let mut buf: Vec<u64> = Vec::new();
            if me == 0 {
                comm.recv_into(1, TAG_SYNC, &mut buf);
                comm.recv_into(2, TAG_SYNC, &mut buf);
                comm.send(1, TAG_SYNC, &[1u64]);
                comm.send(2, TAG_SYNC, &[1u64]);
            } else {
                comm.send(0, TAG_SYNC, &[me as u64]);
                comm.recv_into(0, TAG_SYNC, &mut buf);
            }
        })
        .join_ok();
        let verdicts = verdicts.lock().expect("verdict lock").clone();
        if verdicts != vec![3, 3, 3] {
            return Err(format!(
                "{label}: expected all three survivors to blame rank 3, got {verdicts:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_case_all_paths_agree() {
        differential_2d(&Case2d {
            m: 10,
            n: 14,
            mb: 2,
            nb: 3,
            src_grid: (2, 2),
            dst_grid: (1, 3),
        })
        .unwrap();
    }

    #[test]
    fn fixed_1d_paths_agree() {
        differential_1d(37, 3, 3, 5).unwrap();
    }
}
