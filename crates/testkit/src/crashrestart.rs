//! Crash-restart drills over the scheduler's write-ahead log.
//!
//! One drill per seed:
//!
//! 1. run the seeded scenario uninterrupted on a plain core — the
//!    **baseline** final state;
//! 2. rerun it on a WAL-attached core and "crash" the scheduler at a
//!    seeded transition index (the applications keep running — the
//!    [`crate::harness::Driver`]'s live bookkeeping survives the crash,
//!    like the paper's decoupled resize library);
//! 3. serialize the WAL to its on-disk text format and parse it back —
//!    the recovery input is exactly what a restarted scheduler would read;
//! 4. [`SchedulerCore::recover`] and assert the recovered snapshot equals
//!    the crashed core's, field for field;
//! 5. splice the recovered core into the still-running scenario, drive it
//!    to completion under the invariant + trace oracles, and assert the
//!    final snapshot (minus the still-attached WAL) equals the baseline's.
//!
//! On failure with `TESTKIT_WAL_DIR` set, the WAL stream is dumped to
//! `$TESTKIT_WAL_DIR/seed-<seed>.wal` for offline replay.

use reshape_core::wal::Wal;
use reshape_core::SchedulerCore;

use crate::harness::{Driver, RunStats};
use crate::rng::SplitMix64;
use crate::scenario::generate;

/// What one crash-restart drill did.
#[derive(Clone, Copy, Debug)]
pub struct CrashReport {
    /// Transition index the scheduler was killed at.
    pub crash_at: usize,
    /// WAL records the recovery replayed.
    pub wal_records: usize,
    /// Statistics of the post-recovery run (equal to the baseline's).
    pub stats: RunStats,
}

/// Run the crash-restart drill for `seed`. See the module docs for the
/// protocol. The error string carries the seed and, when `TESTKIT_WAL_DIR`
/// is set, the path of the dumped WAL.
pub fn run_crash_restart(seed: u64) -> Result<CrashReport, String> {
    let sc = generate(seed);
    let fail = |msg: String| format!("seed {seed} (crash-restart): {msg}");

    // Baseline: the same scenario, never interrupted.
    let (baseline_stats, baseline_core) =
        Driver::new(&sc, SchedulerCore::new(sc.total_procs, sc.policy))
            .finish()
            .map_err(|e| fail(format!("baseline run failed: {e}")))?;
    let baseline = baseline_core.snapshot();

    // Crash index: anywhere in the run, from "immediately after the first
    // transition" to "one before the end" (seeded, so reproducible).
    let total = baseline_stats.transitions;
    let crash_at = if total <= 1 {
        1
    } else {
        SplitMix64::new(seed ^ 0xC4A5_4357).usize_range(1, total - 1)
    };

    // Run to the crash point with the WAL attached.
    let mut driver = Driver::new(
        &sc,
        SchedulerCore::new(sc.total_procs, sc.policy).with_wal(Wal::in_memory()),
    );
    while driver.transitions() < crash_at {
        match driver.step() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(fail(format!("pre-crash run failed: {e}"))),
        }
    }

    // The "crash": all in-memory scheduler state is gone; only the WAL
    // text survives. Encode → decode round-trips the durable form.
    let wal = driver
        .core_mut()
        .take_wal()
        .expect("WAL was attached before the run");
    let text = wal.encode();
    let dump = |why: &str| -> String {
        let mut msg = fail(why.to_string());
        if let Ok(dir) = std::env::var("TESTKIT_WAL_DIR") {
            let path = std::path::Path::new(&dir).join(format!("seed-{seed}.wal"));
            let _ = std::fs::create_dir_all(&dir);
            match std::fs::write(&path, &text) {
                Ok(()) => msg.push_str(&format!(" [WAL dumped to {}]", path.display())),
                Err(e) => msg.push_str(&format!(" [WAL dump failed: {e}]")),
            }
        }
        msg
    };
    let decoded = Wal::decode(&text).map_err(|e| dump(&format!("WAL reparse failed: {e:?}")))?;
    let wal_records = decoded.len();
    let recovered =
        SchedulerCore::recover(decoded).map_err(|e| dump(&format!("recovery failed: {e:?}")))?;

    // Exact state equality with the core that wrote the log.
    if recovered.snapshot() != driver.core().snapshot() {
        return Err(dump("recovered snapshot differs from the crashed core's"));
    }

    // Splice the recovered scheduler into the still-running scenario and
    // finish under the oracles.
    driver.swap_core(recovered);
    let (stats, final_core) = driver
        .finish()
        .map_err(|e| dump(&format!("post-recovery run failed: {e}")))?;

    // The interrupted-and-recovered run must land on the baseline's exact
    // final state: recovery is invisible to scheduling outcomes.
    if final_core.snapshot() != baseline {
        return Err(dump("final state after recovery diverged from the uninterrupted run"));
    }

    Ok(CrashReport {
        crash_at,
        wal_records,
        stats,
    })
}
