//! The scheduler invariant oracle.
//!
//! Two layers of checks:
//!
//! * [`check_invariants`] — structural soundness of the live scheduler
//!   state, evaluated after every transition: no processor leaked or
//!   double-allocated, allocation sizes match configurations, pool
//!   accounting consistent.
//! * [`check_trace`] — admission-order and termination properties judged
//!   from the full event trace once a run ends: FCFS never starts a job
//!   past a waiting earlier one; backfill only bypasses a job that could
//!   not have fit; every job reaches a terminal state; the cluster drains
//!   back to fully idle.
//!
//! Both assume a priority-flat, reservation-free workload (what the
//! scenario generator produces).

use std::collections::{BTreeMap, BTreeSet};

use reshape_core::{EventKind, JobId, JobState, QueuePolicy, SchedEvent, SchedulerCore};

/// Structural invariants of the live scheduler state. Returns a
/// description of the first violation found.
pub fn check_invariants(core: &SchedulerCore) -> Result<(), String> {
    // Owned, not total: a federated core may have lent native slots away
    // (they count neither idle nor busy) or borrowed foreign ones (minted
    // at ids >= total). For a standalone core owned == total and the
    // checks reduce to their classic forms.
    let owned = core.owned_procs();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for (id, rec) in core.jobs() {
        match rec.state {
            JobState::Running { config } => {
                if rec.slots.len() != config.procs() {
                    return Err(format!(
                        "{id}: running on {} but holds {} slots",
                        config,
                        rec.slots.len()
                    ));
                }
                for &s in &rec.slots {
                    if !core.slot_owned(s) {
                        return Err(format!(
                            "{id}: slot {s} not owned by this pool (lent away or never minted)"
                        ));
                    }
                    if !seen.insert(s) {
                        return Err(format!("{id}: slot {s} double-allocated"));
                    }
                }
            }
            _ => {
                if !rec.slots.is_empty() {
                    return Err(format!(
                        "{id}: not running but still holds {} slots",
                        rec.slots.len()
                    ));
                }
            }
        }
    }
    if seen.len() != core.busy_procs() {
        return Err(format!(
            "processor leak: jobs hold {} slots but the pool counts {} busy",
            seen.len(),
            core.busy_procs()
        ));
    }
    if core.idle_procs() + core.busy_procs() != owned {
        return Err(format!(
            "pool accounting broken: idle {} + busy {} != owned {owned} \
             (total {}, lent {}, borrowed {})",
            core.idle_procs(),
            core.busy_procs(),
            core.total_procs(),
            core.lent_procs(),
            core.borrowed_procs()
        ));
    }
    Ok(())
}

/// End-of-run checks: every job terminal, cluster drained, and the event
/// trace respects the queue policy's admission order. `need` maps each job
/// to its initial processor request.
pub fn check_trace(
    core: &SchedulerCore,
    events: &[SchedEvent],
    need: &BTreeMap<JobId, usize>,
    policy: QueuePolicy,
) -> Result<(), String> {
    for (id, rec) in core.jobs() {
        if !rec.state.is_terminal() {
            return Err(format!("{id} never terminated (state {:?})", rec.state));
        }
    }
    if core.idle_procs() != core.total_procs() {
        return Err(format!(
            "cluster did not drain: {} of {} idle at end",
            core.idle_procs(),
            core.total_procs()
        ));
    }
    check_admission_order(events, need, policy, core.total_procs())
}

/// Replay the trace, tracking who is queued and how many processors are
/// busy, and judge every `Started` event against the queue policy.
///
/// Queue order is submission order (JobIds are assigned in submission
/// order and the generator keeps priorities flat). For FCFS a start while
/// an earlier job waits is always a violation; for backfill it is legal
/// only if the bypassed job could not have fit the idle processors at that
/// instant — exactly the check `try_schedule` makes, so any divergence is
/// a scheduler bug, not model drift.
fn check_admission_order(
    events: &[SchedEvent],
    need: &BTreeMap<JobId, usize>,
    policy: QueuePolicy,
    total: usize,
) -> Result<(), String> {
    let mut queued: BTreeSet<JobId> = BTreeSet::new();
    let mut running: BTreeMap<JobId, usize> = BTreeMap::new();
    let mut busy = 0usize;
    for e in events {
        match &e.kind {
            EventKind::Submitted => {
                queued.insert(e.job);
            }
            EventKind::Started { config } => {
                queued.remove(&e.job);
                let idle = total - busy;
                for earlier in queued.iter().filter(|q| **q < e.job) {
                    let earlier_need = *need
                        .get(earlier)
                        .ok_or_else(|| format!("{earlier} missing from need map"))?;
                    match policy {
                        QueuePolicy::Fcfs => {
                            return Err(format!(
                                "FCFS violated at t={}: {} started while {earlier} waited",
                                e.time, e.job
                            ));
                        }
                        QueuePolicy::Backfill => {
                            if earlier_need <= idle {
                                return Err(format!(
                                    "backfill violated at t={}: {} started while {earlier} \
                                     (need {earlier_need} <= idle {idle}) waited",
                                    e.time, e.job
                                ));
                            }
                        }
                    }
                }
                busy += config.procs();
                running.insert(e.job, config.procs());
            }
            EventKind::Expanded { to, .. }
            | EventKind::Shrunk { to, .. }
            | EventKind::NodeFailed { to, .. } => {
                let prev = running.insert(e.job, to.procs()).unwrap_or(0);
                busy = busy + to.procs() - prev;
            }
            EventKind::ExpandFailed { from, .. } => {
                let prev = running.insert(e.job, from.procs()).unwrap_or(0);
                busy = busy + from.procs() - prev;
            }
            EventKind::Finished | EventKind::Failed { .. } | EventKind::Cancelled => {
                queued.remove(&e.job);
                busy -= running.remove(&e.job).unwrap_or(0);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};

    fn spec(procs: usize) -> JobSpec {
        JobSpec::new(
            "t",
            TopologyPref::AnyCount {
                min: procs,
                max: 64,
                step: 1,
            },
            ProcessorConfig::linear(procs),
            3,
        )
        .static_job()
    }

    #[test]
    fn healthy_core_passes() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (_a, _) = core.submit(spec(4), 0.0);
        check_invariants(&core).unwrap();
        let (_b, _) = core.submit(spec(8), 0.1); // queues behind a
        check_invariants(&core).unwrap();
    }

    #[test]
    fn planted_leak_is_caught() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        core.chaos_skip_release_on_failure(true);
        let (a, _) = core.submit(spec(4), 0.0);
        core.on_failed(a, "injected".into(), 1.0);
        let err = check_invariants(&core).unwrap_err();
        assert!(err.contains("leak"), "unexpected message: {err}");
    }

    #[test]
    fn fcfs_bypass_is_flagged() {
        // Hand-built illegal trace: job 2 starts while job 1 waits.
        let mk = |job, kind| SchedEvent {
            time: 0.0,
            job: JobId(job),
            kind,
        };
        let events = vec![
            mk(1, EventKind::Submitted),
            mk(2, EventKind::Submitted),
            mk(
                2,
                EventKind::Started {
                    config: ProcessorConfig::linear(2),
                },
            ),
        ];
        let mut need = BTreeMap::new();
        need.insert(JobId(1), 2);
        need.insert(JobId(2), 2);
        let err = check_admission_order(&events, &need, QueuePolicy::Fcfs, 8).unwrap_err();
        assert!(err.contains("FCFS violated"));
        // The same trace is also an illegal backfill (job 1 would have fit).
        let err = check_admission_order(&events, &need, QueuePolicy::Backfill, 8).unwrap_err();
        assert!(err.contains("backfill violated"));
        // ... but a legal backfill when job 1 cannot fit.
        need.insert(JobId(1), 16);
        check_admission_order(&events, &need, QueuePolicy::Backfill, 8).unwrap();
    }
}
