//! The 256-seed partition chaos sweep: every seeded federation scenario
//! with scripted network partitions layered on — cross-group lease
//! traffic silently dropped, lenders fencing leases behind suspicion
//! timeouts, anti-entropy digests reconciling the ledger at heal — must
//! keep the global processor ledger (epoch rules included) exact after
//! every transition, and drain to quiescence once the last partition
//! heals. On failure the seed is in the message; set `TESTKIT_FAULT_DIR`
//! to also get the partition schedule and per-shard WAL streams on disk.

use reshape_testkit::{run_partition_chaos, run_planted_stale_epoch_grant};

#[test]
fn two_hundred_fifty_six_partition_chaos_seeds_hold_the_ledger() {
    let mut started = 0u64;
    let mut healed = 0u64;
    let mut fenced = 0u64;
    let mut repairs = 0u64;
    let mut fixups = 0u64;
    let mut evicts = 0u64;
    let mut escrows = 0u64;
    let mut leases = 0u64;
    let mut kills = 0u64;
    let mut recoveries = 0u64;
    let mut checks = 0u64;
    for seed in 0..256u64 {
        let rep = run_partition_chaos(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        started += rep.report.partitions_started;
        healed += rep.report.partitions_healed;
        fenced += rep.report.leases_fenced;
        repairs += rep.report.heal_repairs;
        fixups += rep.report.heal_repairs_recovery_fixup;
        evicts += rep.report.heal_repairs_evict_stale_borrow;
        escrows += rep.report.heal_repairs_return_escrow;
        leases += rep.report.leases_granted;
        kills += rep.report.shard_kills;
        recoveries += rep.report.shard_recoveries;
        checks += rep.ledger_checks;
    }
    println!(
        "partition sweep: started={started} healed={healed} fenced={fenced} \
         repairs={repairs} (fixup={fixups} evict={evicts} escrow={escrows}) \
         leases={leases} kills={kills} checks={checks}"
    );
    // The sweep must actually exercise every partition arm, not skate
    // past it: real splits (each matched by a heal), real fences, real
    // heal repairs — on top of the base scenario's kills and lending.
    assert_eq!(started, healed, "every partition must heal");
    assert!(started > 300, "partition arm unexercised: {started}");
    assert!(fenced > 30, "fencing arm unexercised: {fenced}");
    assert!(repairs > 10, "anti-entropy repair arm unexercised: {repairs}");
    // Every repair kind individually, with the exact decomposition: each
    // run already proves its kinds sum to its total, so the sweep-wide
    // sums must too — and all three paths (recovery fixup, evict-stale-
    // borrow, return-escrow) must fire somewhere in the sweep.
    assert_eq!(fixups + evicts + escrows, repairs, "repair kinds must decompose the total");
    assert!(fixups > 0, "recovery-fixup repair arm unexercised");
    assert!(evicts > 0, "evict-stale-borrow repair arm unexercised");
    assert!(escrows > 0, "return-escrow repair arm unexercised");
    assert!(leases > 100, "lending arm unexercised: {leases}");
    assert_eq!(kills, recoveries, "every kill must be recovered");
    assert!(
        checks > 256 * 50,
        "ledger oracle ran suspiciously rarely: {checks} checks"
    );
}

/// The sweep's green is only as good as its oracle: a borrower attaching
/// a grant that was minted under an epoch its lender has since fenced
/// must be flagged, by name.
#[test]
fn planted_stale_epoch_grant_is_caught_by_the_ledger_oracle() {
    let msg = run_planted_stale_epoch_grant().expect("oracle must catch the stale-epoch attach");
    assert!(msg.contains("epoch fence"), "unexpected violation: {msg}");
    println!("ledger oracle flagged: {msg}");
}

/// One extra partition drill on a seed from the environment — CI passes
/// `TESTKIT_SEED=$GITHUB_RUN_ID` so every pipeline run probes a fresh
/// point of the space.
#[test]
fn partition_chaos_seed_from_env() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed sweep covers the default case
    };
    println!("testkit: partition chaos drill on environment seed {seed}");
    run_partition_chaos(seed).unwrap_or_else(|e| {
        panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
    });
}

/// The scheduled long-chaos sweep: `TESTKIT_SWEEP=N` widens the sweep to
/// `N` seeds starting past the fixed range (the per-PR sweep covers
/// 0..256; this probes fresh space on a cron cadence). Not run unless the
/// variable is set.
#[test]
fn partition_long_sweep_from_env() {
    let n: u64 = match std::env::var("TESTKIT_SWEEP") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SWEEP must be an integer"),
        Err(_) => return,
    };
    println!("testkit: long partition sweep over {n} seeds");
    for seed in 256..256 + n {
        run_partition_chaos(seed).unwrap_or_else(|e| {
            panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
        });
    }
}
