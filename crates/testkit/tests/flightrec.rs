//! Flight-recorder bounds drills: the control-plane ring must keep the
//! newest N events under sustained chaos (evicting oldest-first, counting
//! every drop in `fed.flightrec_dropped_total`), and a planted oracle
//! failure must yield a parseable JSONL dump — the artifact CI uploads
//! when a sweep trips.

use reshape_federation::sim::run_with_fed;
use reshape_federation::FlightEvent;
use reshape_telemetry as telemetry;
use reshape_testkit::{generate_partition, run_planted_double_grant_with_fed};

/// A partition chaos scenario with a tiny ring: the run generates far
/// more control-plane events than 16, so eviction is sustained — and the
/// retained suffix must be exactly the newest 16 of the full event
/// stream (proved by re-running the same seed with an ample ring).
#[test]
fn sustained_chaos_keeps_newest_events_and_counts_drops() {
    const TINY: usize = 16;
    let mut cfg = generate_partition(11);
    cfg.flightrec_cap = TINY;
    let before = telemetry::counter("fed.flightrec_dropped_total").get();
    let (_, small) = run_with_fed(cfg, |_, _| {});
    let after = telemetry::counter("fed.flightrec_dropped_total").get();

    assert_eq!(small.flightrec().len(), TINY, "ring must fill to cap");
    assert!(
        small.flightrec().dropped() > 0,
        "sustained chaos must overflow a {TINY}-slot ring"
    );
    assert!(
        after - before >= small.flightrec().dropped(),
        "every eviction must land in fed.flightrec_dropped_total \
         (counter moved {}, ring dropped {})",
        after - before,
        small.flightrec().dropped()
    );

    // Same seed, ample ring: nothing dropped, and the tiny ring's
    // retained events are exactly the newest TINY of the full stream.
    let mut cfg = generate_partition(11);
    cfg.flightrec_cap = 1 << 20;
    let (_, big) = run_with_fed(cfg, |_, _| {});
    assert_eq!(big.flightrec().dropped(), 0, "ample ring must not evict");
    let full: Vec<&FlightEvent> = big.flightrec().events().collect();
    assert_eq!(
        small.flightrec().dropped() as usize + TINY,
        full.len(),
        "drops + retained must account for every event"
    );
    let newest: Vec<&FlightEvent> = full[full.len() - TINY..].to_vec();
    let kept: Vec<&FlightEvent> = small.flightrec().events().collect();
    assert_eq!(kept, newest, "eviction must be strictly oldest-first");
}

/// The planted double grant trips the ledger oracle; the flight recorder
/// of that failing federation must dump as parseable JSONL whose summary
/// line agrees with the ring's own accounting.
#[test]
fn planted_oracle_failure_produces_a_parseable_dump() {
    let (violation, fed) =
        run_planted_double_grant_with_fed().expect("oracle must catch the rogue lease");
    assert!(!violation.is_empty());
    let dump = fed.flightrec().dump_jsonl();
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines.len() >= 2, "dump must hold events plus a summary");
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        // Quote parity — crude but catches any escaping bug that would
        // break a real JSON parser.
        let unescaped = l
            .as_bytes()
            .windows(2)
            .filter(|w| w[1] == b'"' && w[0] != b'\\')
            .count()
            + usize::from(l.starts_with('"'));
        assert_eq!(unescaped % 2, 0, "unbalanced quotes: {l}");
    }
    let (events, summary) = lines.split_at(lines.len() - 1);
    for l in events {
        assert!(l.contains("\"t\":") && l.contains("\"kind\":\""), "{l}");
    }
    assert!(
        summary[0].contains("\"type\":\"flightrec_summary\"")
            && summary[0].contains(&format!("\"retained\":{}", fed.flightrec().len()))
            && summary[0].contains(&format!("\"dropped\":{}", fed.flightrec().dropped())),
        "summary must match the ring: {}",
        summary[0]
    );
    // The rogue grant itself is on the record — the dump tells the story
    // of the failure, not just that one happened.
    assert!(
        fed.flightrec().events().any(|e| e.kind == "lease_grant"),
        "dump must include the grants that led to the violation"
    );
}
