//! Seeded end-to-end survival drills: real node crashes on the simulated
//! cluster, driven through the full runtime (heartbeat detection, buddy
//! restore, rollback + replay, forced shrink), plus the transactional
//! redistribution rollback differential. The scheduler-level 256-seed
//! sweep lives in `invariants.rs`; these run the data plane for real, so
//! the seed counts are smaller but every run spawns actual rank threads.

use reshape_testkit::{run_survival, run_txn_rollback};

/// A spread of seeded node-loss drills. Each drill's internal oracle
/// demands survival iff the victim's buddy is intact and bitwise equality
/// with a fault-free baseline; here we additionally require the sweep to
/// exercise *both* outcomes.
#[test]
fn seeded_node_loss_drills_hold_the_survival_oracle() {
    let mut survived = 0;
    let mut fatal = 0;
    for seed in 0..12u64 {
        let rep = run_survival(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        if rep.survived {
            survived += 1;
        } else {
            fatal += 1;
        }
    }
    assert!(
        survived > 0 && fatal > 0,
        "drill mix degenerate: {survived} survived, {fatal} fatal"
    );
}

/// Mid-redistribution deaths must roll the transaction back bitwise on
/// every survivor, across seeded layouts and victims.
#[test]
fn seeded_mid_redistribution_deaths_roll_back() {
    for seed in 0..12u64 {
        run_txn_rollback(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
    }
}

/// One extra seed taken from the environment — CI passes
/// `TESTKIT_SEED=$GITHUB_RUN_ID` so every pipeline run probes a fresh
/// point of the space; the seed is printed so a red run is reproducible.
#[test]
fn survival_seed_from_env() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed drills cover the default case
    };
    println!("testkit: running environment survival seed {seed}");
    run_survival(seed).unwrap_or_else(|e| {
        panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
    });
    run_txn_rollback(seed).unwrap_or_else(|e| {
        panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
    });
}
