//! The seeded fault-schedule sweep (ISSUE acceptance: ≥ 200 schedules
//! through the invariant oracle) plus the planted-bug demonstration that
//! the oracle has teeth.

use reshape_core::{QueuePolicy, SchedulerCore};
use reshape_testkit::scenario::Fault;
use reshape_testkit::{generate, run_scenario_on, run_seed, RunStats};

/// 256 seeded workload/fault schedules, every scheduler transition checked
/// by the invariant oracle and every trace checked for admission order.
/// On failure the message carries the seed; reproduce with
/// `TESTKIT_SEED=<seed> cargo test -p reshape-testkit seed_from_env`.
#[test]
fn two_hundred_fifty_six_seeded_schedules_hold_invariants() {
    let mut agg = RunStats::default();
    for seed in 0..256u64 {
        let st = run_seed(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        agg.transitions += st.transitions;
        agg.starts += st.starts;
        agg.expansions += st.expansions;
        agg.shrinks += st.shrinks;
        agg.expand_failures += st.expand_failures;
        agg.job_failures += st.job_failures;
        agg.cancellations += st.cancellations;
        agg.node_losses_survived += st.node_losses_survived;
    }
    // The sweep must genuinely exercise the recovery machinery, not just
    // pass vacuously.
    assert!(agg.starts >= 256, "too few starts: {agg:?}");
    assert!(agg.expansions > 50, "expansion path unexercised: {agg:?}");
    assert!(agg.shrinks > 10, "shrink path unexercised: {agg:?}");
    assert!(agg.expand_failures > 10, "expand-failure path unexercised: {agg:?}");
    assert!(agg.job_failures > 20, "failure path unexercised: {agg:?}");
    assert!(agg.cancellations > 20, "cancel path unexercised: {agg:?}");
    assert!(
        agg.node_losses_survived > 10,
        "forced-shrink path unexercised: {agg:?}"
    );
}

/// One extra seed taken from the environment — CI passes
/// `TESTKIT_SEED=$GITHUB_RUN_ID` so every pipeline run probes a fresh
/// point of the space; the seed is printed so a red run is reproducible.
#[test]
fn seed_from_env() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed sweep covers the default case
    };
    println!("testkit: running environment seed {seed}");
    run_seed(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}"));
}

/// Acceptance check: deliberately break processor reclamation (the chaos
/// hook makes `on_failed` leak the dead job's slots) and assert the oracle
/// catches it. A sweep that cannot fail proves nothing.
#[test]
fn oracle_catches_planted_reclamation_bug() {
    // Find seeds whose schedules contain a job failure; the planted leak
    // only manifests when `on_failed` runs.
    let mut caught = 0;
    let mut with_failures = 0;
    for seed in 0..64u64 {
        let sc = generate(seed);
        if !sc
            .jobs
            .iter()
            .any(|j| matches!(j.fault, Some(Fault::FailAtCheckin(_))))
        {
            continue;
        }
        with_failures += 1;
        let mut core = SchedulerCore::new(sc.total_procs, sc.policy);
        core.chaos_skip_release_on_failure(true);
        let err = run_scenario_on(&sc, core)
            .expect_err("planted pool leak must trip the oracle");
        assert!(
            err.contains("leak") || err.contains("drain"),
            "seed {seed}: oracle tripped for the wrong reason: {err}"
        );
        caught += 1;
    }
    assert!(with_failures >= 5, "generator produced too few failure schedules");
    assert_eq!(caught, with_failures, "every leaking run must be caught");
}

/// The harness itself is deterministic: same seed, same statistics.
#[test]
fn runs_are_reproducible() {
    for seed in [3u64, 17, 99] {
        let a = run_seed(seed).expect("clean run");
        let b = run_seed(seed).expect("clean run");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed} diverged");
    }
}

/// Both queue policies appear across the sweep (the admission-order oracle
/// has distinct FCFS and backfill branches — make sure both execute).
#[test]
fn sweep_covers_both_policies() {
    let mut fcfs = 0;
    let mut backfill = 0;
    for seed in 0..64u64 {
        match generate(seed).policy {
            QueuePolicy::Fcfs => fcfs += 1,
            QueuePolicy::Backfill => backfill += 1,
        }
    }
    assert!(fcfs > 10 && backfill > 10, "policy mix skewed: {fcfs}/{backfill}");
}
