//! The 256-seed federation chaos sweep: every seeded multi-shard,
//! multi-tenant scenario — with shard kills at seeded transitions, lease
//! expiries, and loss/duplication/reordering on the lease wire — must
//! keep the global processor ledger exact after every transition, replay
//! every killed shard's WAL to field-for-field snapshot equality, keep
//! surviving shards admitting during outages, and drain to quiescence.
//! On failure the seed is in the message; set `TESTKIT_FAULT_DIR` to also
//! get the fault schedule and per-shard WAL streams on disk.

use reshape_testkit::{check_ledger, run_federation_chaos, run_planted_double_grant};

#[test]
fn two_hundred_fifty_six_federation_chaos_seeds_hold_the_ledger() {
    let mut kills = 0u64;
    let mut recoveries = 0u64;
    let mut leases = 0u64;
    let mut evictions = 0u64;
    let mut brownouts = 0u64;
    let mut shed = 0u64;
    let mut checks = 0u64;
    for seed in 0..256u64 {
        let rep = run_federation_chaos(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        kills += rep.report.shard_kills;
        recoveries += rep.report.shard_recoveries;
        leases += rep.report.leases_granted;
        evictions += rep.report.evict_shrinks + rep.report.evict_failed;
        brownouts += rep.report.brownout_engaged;
        shed += rep.report.shed;
        checks += rep.ledger_checks;
    }
    // The sweep must actually exercise every fault arm, not skate past
    // them: real kills (each matched by a recovery), real lending, real
    // expiry evictions, real brownouts, real load shedding.
    assert_eq!(kills, recoveries, "every kill must be recovered");
    assert!(kills > 50, "shard-kill arm unexercised: {kills}");
    assert!(leases > 100, "lending arm unexercised: {leases}");
    assert!(evictions > 20, "lease-expiry arm unexercised: {evictions}");
    assert!(brownouts > 20, "brownout arm unexercised: {brownouts}");
    assert!(shed > 50, "overload-shedding arm unexercised: {shed}");
    assert!(
        checks > 256 * 50,
        "ledger oracle ran suspiciously rarely: {checks} checks"
    );
}

/// The sweep's green is only as good as its oracle: a lender wiring the
/// same processors to two borrowers — without journaling the second grant
/// — must be flagged.
#[test]
fn planted_double_grant_is_caught_by_the_ledger_oracle() {
    let msg = run_planted_double_grant().expect("oracle must catch the planted double grant");
    println!("ledger oracle flagged: {msg}");
}

/// The clustersim workload generator feeds the federation router: tenant
/// ids drawn by `random_workload_with_faults` (from their own SplitMix64
/// stream) must land in a configurable tenant range, route through
/// multi-tenant admission without panicking, respect each tenant's
/// router-queue bound, and leave the global ledger exact after every
/// submission.
#[test]
fn random_workloads_route_through_federated_admission() {
    use reshape_federation::{Federation, FederationConfig, TenantConfig};

    for seed in [2u64, 13, 88, 200] {
        let w = reshape_clustersim::random_workload_with_faults(seed, 12, 36);
        let max_tenant = w.jobs.iter().map(|j| j.tenant).max().expect("jobs");
        assert!(max_tenant >= 1, "tenanted workloads start at tenant 1");
        // Tenants 0..=max (0 stays configured-but-unused: the generator
        // reserves it for untenanted jobs).
        let tenants = (0..=max_tenant)
            .map(|_| TenantConfig::new(24, 1.0, 4))
            .collect();
        let mut fed = Federation::new(FederationConfig::new(vec![12, 12, 12], tenants));
        let mut submitted = 0u64;
        for (i, job) in w.jobs.iter().enumerate() {
            let _ = fed.submit(job.tenant, i as u64, job.spec.clone(), job.arrival);
            submitted += 1;
            check_ledger(&fed).unwrap_or_else(|e| {
                panic!("seed {seed}: ledger violated after submission {i}: {e}")
            });
        }
        let mut accounted = 0u64;
        for t in 0..=max_tenant {
            assert!(
                fed.tenant_queue_len(t) <= 4,
                "seed {seed}: tenant {t} router queue exceeded its bound"
            );
            accounted += fed.tenant_admitted(t) + fed.tenant_queue_len(t) as u64 + fed.tenant_shed(t);
        }
        assert_eq!(
            accounted, submitted,
            "seed {seed}: every submission must be admitted, queued, or shed"
        );
        assert_eq!(fed.tenant_admitted(0) + fed.tenant_shed(0), 0, "tenant 0 stays unused");
    }
}

/// One extra chaos drill on a seed from the environment — CI passes
/// `TESTKIT_SEED=$GITHUB_RUN_ID` so every pipeline run probes a fresh
/// point of the space.
#[test]
fn federation_chaos_seed_from_env() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed sweep covers the default case
    };
    println!("testkit: federation chaos drill on environment seed {seed}");
    run_federation_chaos(seed).unwrap_or_else(|e| {
        panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
    });
}
