//! The tracing-invisibility drill: with causal tracing enabled, seeded
//! federation and partition chaos runs must be **bitwise identical** to
//! their tracing-off twins — same report (SLO series included), same
//! final WAL streams shard for shard, same flight-recorder timeline.
//! Span ids are inert metadata: they must never reach control flow, a
//! clock, or an RNG on the virtual path.

use reshape_federation::sim::{run_with_fed, FedSimConfig};
use reshape_telemetry::trace;
use reshape_testkit::{generate_federation, generate_partition};

/// Everything observable about a run: the full report, every shard's
/// final WAL text, and the flight-recorder dump.
fn fingerprint(cfg: FedSimConfig) -> String {
    let (report, fed) = run_with_fed(cfg, |_, _| {});
    let mut out = format!("{report:?}\n");
    for sh in fed.shards() {
        let wal = sh
            .core()
            .and_then(|c| c.wal())
            .map(|w| w.encode())
            .unwrap_or_default();
        out.push_str(&wal);
        out.push('\n');
    }
    out.push_str(&fed.flightrec().dump_jsonl());
    out
}

#[test]
fn tracing_is_invisible_to_federation_and_partition_sweeps() {
    let generators = [
        generate_federation as fn(u64) -> FedSimConfig,
        generate_partition as fn(u64) -> FedSimConfig,
    ];
    for seed in [0u64, 3, 7, 11, 42, 99, 173, 255] {
        for (gi, gen) in generators.iter().enumerate() {
            trace::reset();
            trace::set_enabled(false);
            let off = fingerprint(gen(seed));
            trace::set_enabled(true);
            let on = fingerprint(gen(seed));
            let spans = trace::drain_spans();
            trace::set_enabled(false);
            trace::reset();
            assert!(
                !spans.is_empty(),
                "seed {seed} gen {gi}: tracing-on run must record spans"
            );
            assert_eq!(
                off, on,
                "seed {seed} gen {gi}: tracing perturbed the run"
            );
        }
    }
}
