//! Differential sweep: the DES-backed executor must be transition-
//! equivalent to the legacy scan-based driver on every generated scenario.
//! Both run the invariant oracle after every transition and the trace
//! oracle at the end, so this sweep also proves the fault schedules and
//! invariant checks hold on the new engine.

use reshape_core::SchedulerCore;
use reshape_testkit::{generate, des::DesHarness, harness::Driver};

fn seeds() -> Vec<u64> {
    let mut seeds: Vec<u64> = (0..256).collect();
    if let Ok(s) = std::env::var("TESTKIT_SEED") {
        if let Ok(s) = s.parse::<u64>() {
            seeds.push(s);
        }
    }
    seeds
}

/// The full 256-seed sweep: identical run statistics and bitwise-identical
/// final scheduler snapshots from both executors.
#[test]
fn des_harness_matches_legacy_driver_across_sweep() {
    for seed in seeds() {
        let sc = generate(seed);
        let (legacy_stats, legacy_core) =
            Driver::new(&sc, SchedulerCore::new(sc.total_procs, sc.policy))
                .finish()
                .unwrap_or_else(|e| panic!("legacy driver failed: {e}"));
        let (des_stats, des_core) =
            DesHarness::new(&sc, SchedulerCore::new(sc.total_procs, sc.policy))
                .finish()
                .unwrap_or_else(|e| panic!("DES harness failed: {e}"));
        assert_eq!(
            format!("{legacy_stats:?}"),
            format!("{des_stats:?}"),
            "seed {seed}: run statistics diverged"
        );
        assert!(
            legacy_core.snapshot() == des_core.snapshot(),
            "seed {seed}: final core snapshots diverged"
        );
    }
}

/// The sweep must actually exercise every fault path on the DES engine —
/// otherwise equivalence is vacuous for the untouched arms.
#[test]
fn des_sweep_covers_every_fault_path() {
    let mut agg = reshape_testkit::RunStats::default();
    for seed in seeds() {
        let st = reshape_testkit::run_seed_des(seed)
            .unwrap_or_else(|e| panic!("DES run failed: {e}"));
        agg.starts += st.starts;
        agg.expansions += st.expansions;
        agg.shrinks += st.shrinks;
        agg.expand_failures += st.expand_failures;
        agg.job_failures += st.job_failures;
        agg.cancellations += st.cancellations;
        agg.hangs_injected += st.hangs_injected;
        agg.watchdog_kills += st.watchdog_kills;
        agg.node_losses_survived += st.node_losses_survived;
    }
    assert!(agg.expansions > 0, "sweep never expanded");
    assert!(agg.shrinks > 0, "sweep never shrank");
    assert!(agg.expand_failures > 0, "sweep never failed an expansion");
    assert!(agg.job_failures > 0, "sweep never failed a job");
    assert!(agg.cancellations > 0, "sweep never cancelled");
    assert!(agg.hangs_injected > 0, "sweep never hung a job");
    assert_eq!(
        agg.hangs_injected, agg.watchdog_kills,
        "every hang must be watchdog-killed and no healthy job killed"
    );
    assert!(agg.node_losses_survived > 0, "sweep never survived a node loss");
}
