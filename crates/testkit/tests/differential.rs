//! Differential sweep: every redistribution path must agree bitwise on
//! seeded random layouts, and every fault-checked variant must abort
//! cleanly when a rank is dead.

use reshape_testkit::differential::{
    dead_rank_aborts_2d, differential_1d, differential_2d, gen_case_2d,
};
use reshape_testkit::SplitMix64;

#[test]
fn seeded_2d_cases_agree_across_all_paths() {
    let mut rng = SplitMix64::new(0xD1FF);
    for i in 0..12 {
        let case = gen_case_2d(&mut rng);
        differential_2d(&case).unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}

#[test]
fn seeded_1d_cases_agree_across_both_paths() {
    let mut rng = SplitMix64::new(0x1D1D);
    for i in 0..12 {
        let n = rng.usize_range(1, 120);
        let b = rng.usize_range(1, 6);
        let p = rng.usize_range(1, 5);
        let q = rng.usize_range(1, 5);
        differential_1d(n, b, p, q)
            .unwrap_or_else(|e| panic!("case {i} (n={n} b={b} {p}->{q}): {e}"));
    }
}

#[test]
fn dead_rank_aborts_every_checked_path() {
    dead_rank_aborts_2d().unwrap();
}
