//! The 256-seed crash-restart sweep: every seeded workload is run once
//! uninterrupted and once with the scheduler killed at a seeded transition
//! and recovered from its write-ahead log; recovery must reproduce the
//! crashed core's state exactly and the finished run must land on the
//! uninterrupted run's final state. On failure the seed is in the message;
//! set `TESTKIT_WAL_DIR` to also get the offending WAL stream on disk.

use reshape_testkit::run_crash_restart;

#[test]
fn two_hundred_fifty_six_crash_restarts_recover_exactly() {
    let mut total_records = 0usize;
    let mut hangs = 0usize;
    let mut kills = 0usize;
    let mut late_crashes = 0usize;
    for seed in 0..256u64 {
        let rep = run_crash_restart(seed).unwrap_or_else(|e| panic!("TESTKIT FAILURE [{e}]"));
        total_records += rep.wal_records;
        hangs += rep.stats.hangs_injected;
        kills += rep.stats.watchdog_kills;
        if rep.crash_at > 10 {
            late_crashes += 1;
        }
    }
    // The sweep must replay real history, not trivially-empty logs, and
    // crash at varied depths.
    assert!(
        total_records > 256 * 4,
        "WAL streams suspiciously small: {total_records} records over 256 seeds"
    );
    assert!(late_crashes > 50, "crash points skewed early: {late_crashes}");
    // Watchdog acceptance: every injected hang is detected and killed —
    // and nothing else is (kills == hangs means zero false positives).
    assert!(hangs > 20, "hang fault unexercised: {hangs}");
    assert_eq!(kills, hangs, "watchdog missed hangs or killed healthy jobs");
}

/// One extra crash-restart drill on a seed from the environment — CI
/// passes `TESTKIT_SEED=$GITHUB_RUN_ID` so every pipeline run probes a
/// fresh point of the space.
#[test]
fn crash_restart_seed_from_env() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed sweep covers the default case
    };
    println!("testkit: crash-restart drill on environment seed {seed}");
    run_crash_restart(seed).unwrap_or_else(|e| {
        panic!("TESTKIT FAILURE [{e}] — reproduce with TESTKIT_SEED={seed}")
    });
}
