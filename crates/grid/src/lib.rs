//! # reshape-grid — BLACS-style process grids over reshape-mpisim
//!
//! ReSHAPE's resizing library is built on BLACS (the ScaLAPACK
//! communication layer): applications view their processor set as an
//! `R × C` grid, identified by a *context*; resizing exits the old context
//! and creates a new one over the expanded or shrunk processor set.
//!
//! [`GridContext`] reproduces that abstraction: it wraps a communicator in a
//! row-major process grid, exposes coordinate queries (`myrow`/`mycol`,
//! `pcoord`, `pnum`), scoped communicators for row and column operations,
//! and scoped broadcasts (the `xGEBS2D`/`xGEBR2D` pattern used by
//! ScaLAPACK-style algorithms).

use reshape_mpisim::{Comm, Pod};

/// A process grid context: `nprow × npcol` ranks in row-major order over a
/// communicator. Analogous to a BLACS context handle.
///
/// Creating a context is collective over the communicator. "Exiting" a
/// context is simply dropping it; the underlying communicator (and the
/// processes) live on, which is exactly how ReSHAPE shrink/expand rebuilds
/// grids over changing processor sets.
///
/// ```
/// use reshape_grid::GridContext;
/// use reshape_mpisim::{NetModel, Universe};
///
/// Universe::new(6, 1, NetModel::ideal())
///     .launch(6, None, "doc", |comm| {
///         let grid = GridContext::new(&comm, 2, 3);
///         assert_eq!(grid.pnum(grid.myrow(), grid.mycol()), comm.rank());
///         // Row-scoped broadcast from column 0.
///         let data = if grid.mycol() == 0 { vec![grid.myrow() as u64] } else { vec![] };
///         assert_eq!(grid.row_bcast(0, &data), vec![grid.myrow() as u64]);
///     })
///     .join_ok();
/// ```
pub struct GridContext {
    comm: Comm,
    nprow: usize,
    npcol: usize,
    row_comm: Comm,
    col_comm: Comm,
}

impl GridContext {
    /// Build an `nprow × npcol` row-major grid over `comm`. Collective.
    ///
    /// # Panics
    ///
    /// Panics unless `nprow * npcol == comm.size()`.
    pub fn new(comm: &Comm, nprow: usize, npcol: usize) -> Self {
        assert!(
            nprow * npcol == comm.size(),
            "grid {nprow}x{npcol} does not match communicator size {}",
            comm.size()
        );
        let myrow = comm.rank() / npcol;
        let mycol = comm.rank() % npcol;
        // Row communicator: all ranks with my row index, ordered by column.
        let row_comm = comm
            .split(Some(myrow as u32), mycol as i64)
            .expect("row split always assigns a color");
        let col_comm = comm
            .split(Some(mycol as u32), myrow as i64)
            .expect("column split always assigns a color");
        if comm.rank() == 0 {
            reshape_telemetry::incr("grid.contexts_built", 1);
        }
        GridContext {
            comm: comm.clone(),
            nprow,
            npcol,
            row_comm,
            col_comm,
        }
    }

    /// The grid's underlying communicator (all `nprow * npcol` ranks).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Grid height (process rows).
    pub fn nprow(&self) -> usize {
        self.nprow
    }

    /// Grid width (process columns).
    pub fn npcol(&self) -> usize {
        self.npcol
    }

    /// This process's row coordinate.
    pub fn myrow(&self) -> usize {
        self.comm.rank() / self.npcol
    }

    /// This process's column coordinate.
    pub fn mycol(&self) -> usize {
        self.comm.rank() % self.npcol
    }

    /// Rank of the process at `(prow, pcol)` (BLACS `BLACS_PNUM`).
    pub fn pnum(&self, prow: usize, pcol: usize) -> usize {
        assert!(prow < self.nprow && pcol < self.npcol, "coordinate out of grid");
        prow * self.npcol + pcol
    }

    /// Grid coordinates of `rank` (BLACS `BLACS_PCOORD`).
    pub fn pcoord(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.comm.size(), "rank out of grid");
        (rank / self.npcol, rank % self.npcol)
    }

    /// Communicator spanning this process's grid row (ranks ordered by
    /// column coordinate).
    pub fn row_comm(&self) -> &Comm {
        &self.row_comm
    }

    /// Communicator spanning this process's grid column (ranks ordered by
    /// row coordinate).
    pub fn col_comm(&self) -> &Comm {
        &self.col_comm
    }

    /// Broadcast within this process's grid row, rooted at column `root_col`
    /// (the ScaLAPACK row-scope `xGEBS2D`/`xGEBR2D` pair).
    pub fn row_bcast<T: Pod>(&self, root_col: usize, data: &[T]) -> Vec<T> {
        self.row_comm.bcast(root_col, data)
    }

    /// Broadcast within this process's grid column, rooted at row
    /// `root_row`.
    pub fn col_bcast<T: Pod>(&self, root_row: usize, data: &[T]) -> Vec<T> {
        self.col_comm.bcast(root_row, data)
    }

    /// Barrier over the whole grid ("all" scope).
    pub fn barrier(&self) {
        self.comm.barrier();
    }
}

impl std::fmt::Debug for GridContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridContext")
            .field("nprow", &self.nprow)
            .field("npcol", &self.npcol)
            .field("myrow", &self.myrow())
            .field("mycol", &self.mycol())
            .finish()
    }
}

/// Choose the "nearly-square" factorization `r × c = p` with `r ≤ c` and the
/// smallest `c - r` — the grid shape the paper prefers for LU and MM.
///
/// ```
/// assert_eq!(reshape_grid::nearly_square(20), (4, 5));
/// assert_eq!(reshape_grid::nearly_square(36), (6, 6));
/// ```
pub fn nearly_square(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut best = (1, p);
    let mut r = 1;
    while r * r <= p {
        if p.is_multiple_of(r) {
            best = (r, p / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_mpisim::{NetModel, Universe};

    fn on_grid(p: usize, nprow: usize, npcol: usize, f: impl Fn(GridContext) + Send + Sync + 'static) {
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "grid", move |comm| {
                f(GridContext::new(&comm, nprow, npcol));
            })
            .join_ok();
    }

    #[test]
    fn coordinates_are_row_major() {
        on_grid(6, 2, 3, |g| {
            let rank = g.comm().rank();
            assert_eq!(g.myrow(), rank / 3);
            assert_eq!(g.mycol(), rank % 3);
            assert_eq!(g.pnum(g.myrow(), g.mycol()), rank);
            assert_eq!(g.pcoord(rank), (g.myrow(), g.mycol()));
        });
    }

    #[test]
    fn row_and_col_comm_shapes() {
        on_grid(6, 2, 3, |g| {
            assert_eq!(g.row_comm().size(), 3);
            assert_eq!(g.row_comm().rank(), g.mycol());
            assert_eq!(g.col_comm().size(), 2);
            assert_eq!(g.col_comm().rank(), g.myrow());
        });
    }

    #[test]
    fn row_bcast_reaches_whole_row_only() {
        on_grid(6, 2, 3, |g| {
            // Root column 1 broadcasts its row index.
            let data = if g.mycol() == 1 {
                vec![g.myrow() as u64]
            } else {
                vec![]
            };
            let got = g.row_bcast(1, &data);
            assert_eq!(got, vec![g.myrow() as u64]);
        });
    }

    #[test]
    fn col_bcast_reaches_whole_column() {
        on_grid(6, 3, 2, |g| {
            let data = if g.myrow() == 2 {
                vec![g.mycol() as f64 * 10.0]
            } else {
                vec![]
            };
            let got = g.col_bcast(2, &data);
            assert_eq!(got, vec![g.mycol() as f64 * 10.0]);
        });
    }

    #[test]
    fn single_process_grid() {
        on_grid(1, 1, 1, |g| {
            assert_eq!((g.myrow(), g.mycol()), (0, 0));
            assert_eq!(g.row_bcast(0, &[5u8]), vec![5]);
        });
    }

    #[test]
    fn one_dimensional_grids() {
        on_grid(4, 1, 4, |g| {
            assert_eq!(g.myrow(), 0);
            assert_eq!(g.col_comm().size(), 1);
        });
        on_grid(4, 4, 1, |g| {
            assert_eq!(g.mycol(), 0);
            assert_eq!(g.row_comm().size(), 1);
        });
    }

    #[test]
    #[should_panic(expected = "does not match communicator size")]
    fn mismatched_grid_rejected() {
        on_grid(4, 2, 3, |_| {});
    }

    #[test]
    fn nearly_square_factorizations() {
        assert_eq!(nearly_square(1), (1, 1));
        assert_eq!(nearly_square(2), (1, 2));
        assert_eq!(nearly_square(4), (2, 2));
        assert_eq!(nearly_square(6), (2, 3));
        assert_eq!(nearly_square(12), (3, 4));
        assert_eq!(nearly_square(16), (4, 4));
        assert_eq!(nearly_square(20), (4, 5));
        assert_eq!(nearly_square(30), (5, 6));
        assert_eq!(nearly_square(36), (6, 6));
        assert_eq!(nearly_square(7), (1, 7)); // prime
    }

    #[test]
    fn grid_rebuild_after_expansion() {
        // The ReSHAPE expand path: 2 ranks on a 1x2 grid spawn 2 more and
        // rebuild as 2x2.
        let uni = Universe::new(4, 1, NetModel::ideal());
        let h = uni.launch(2, None, "grow", |comm| {
            let g = GridContext::new(&comm, 1, 2);
            g.barrier();
            drop(g); // exit old context
            let bigger = comm.spawn_merge(2, None, "new", |ctx| {
                let merged = ctx.parent.merge();
                let g2 = GridContext::new(&merged, 2, 2);
                assert_eq!(g2.myrow(), 1); // children land in row 1
                g2.barrier();
            });
            let g2 = GridContext::new(&bigger, 2, 2);
            assert_eq!(g2.myrow(), 0);
            g2.barrier();
        });
        h.join_ok();
        uni.join_spawned();
    }
}
