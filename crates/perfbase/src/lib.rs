//! # reshape-perfbase — the performance-trajectory recorder
//!
//! The ROADMAP's scale-and-speed arc demands that every perf PR prove
//! itself against a recorded baseline. This crate is that proof machinery:
//!
//! * [`suites`] — deterministic, seeded benchmark suites covering the
//!   stack's hot paths: block-cyclic index math, schedule planning,
//!   pack/unpack, WAL append/recover (micro), and redistribution
//!   end-to-end on mpisim, spawn latency, cluster-simulator sweeps, and
//!   the node-loss recovery round trip (macro);
//! * [`stats`] — warmup + median/MAD summaries with outlier rejection, so
//!   one preempted CI sample cannot flap the gate;
//! * [`report`] — the schema-versioned `BENCH_<area>.json` trajectory file
//!   (environment fingerprint + per-metric robust statistics), written at
//!   the repo root and **committed**, so speedups and regressions are
//!   visible across PRs;
//! * [`compare`] — the regression gate: diff a fresh run against the
//!   committed baselines with per-metric noise thresholds, print the
//!   delta table, exit nonzero on significant slowdowns;
//! * [`runner`] — the measurement loop plus a process-global sink
//!   (`PERFBASE_OUT=<dir>`) that lets every bench binary contribute its
//!   headline numbers to the same trajectory format instead of printing
//!   into the void.
//!
//! The driver lives in `reshape-bench` as `bin/perfbase`:
//!
//! ```text
//! cargo run --release -p reshape-bench --bin perfbase -- run         # record BENCH_*.json
//! cargo run --release -p reshape-bench --bin perfbase -- compare     # gate against baselines
//! ```
//!
//! Virtual-time metrics (the simulators are deterministic) are held to a
//! 2% drift; wall-clock metrics get generous thresholds because committed
//! baselines travel across machines. `PERFBASE_HANDICAP=metric=2.0`
//! artificially slows a metric at record time — the hook CI and the tests
//! use to prove the gate trips.

pub mod compare;
pub mod report;
pub mod runner;
pub mod stats;
pub mod suites;

pub use compare::{compare, render_table, CompareReport, MetricDelta, Verdict};
pub use report::{repo_root, BenchReport, EnvFingerprint, MetricKind, MetricRecord, SCHEMA_VERSION};
pub use runner::{flush_sink_env, flush_sink_to, sink_metric, Recorder};
pub use stats::{mad, median, summarize, Summary};
pub use suites::{run_area, SuiteOpts, AREAS};
