//! Diff a fresh benchmark run against the committed `BENCH_*.json`
//! baselines: the regression gate.
//!
//! A metric counts as a **significant regression** when the bad-direction
//! drift exceeds *both* filters:
//!
//! 1. the relative noise threshold (per-metric override, else the
//!    [`MetricKind`](crate::report::MetricKind) default), and
//! 2. the statistical spread: the medians must be separated by more than
//!    the sum of the two scaled MADs (a crude but robust two-sample test —
//!    deterministic metrics have MAD 0, so any relative drift is real).
//!
//! Improvements are reported too (they should be re-baselined), but never
//! fail the gate.

use serde::{Deserialize, Serialize};

use crate::report::BenchReport;

/// How one metric moved between the baseline and the current run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Verdict {
    /// Within noise.
    Unchanged,
    /// Significant move in the good direction.
    Improved,
    /// Significant move in the bad direction — fails the gate.
    Regressed,
    /// Present only in the baseline or only in the current run.
    Missing,
    New,
}

/// One row of the comparison table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricDelta {
    pub area: String,
    pub metric: String,
    pub unit: String,
    pub baseline: f64,
    pub current: f64,
    /// Signed relative change of the median, positive = grew.
    pub rel_change: f64,
    /// Threshold the change was judged against.
    pub noise: f64,
    pub verdict: Verdict,
}

/// Comparison of one or more areas.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CompareReport {
    pub deltas: Vec<MetricDelta>,
    /// Human-readable notes (fingerprint mismatches, skipped areas).
    pub notes: Vec<String>,
}

impl CompareReport {
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.verdict == Verdict::Regressed)
    }

    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Exit code for the driver: 0 clean, 1 when any metric regressed.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_regressions())
    }

    /// Fold another area's comparison into this one.
    pub fn extend(&mut self, other: CompareReport) {
        self.deltas.extend(other.deltas);
        self.notes.extend(other.notes);
    }
}

/// Compare one area's current report against its baseline.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> CompareReport {
    let mut out = CompareReport::default();
    assert_eq!(
        baseline.area, current.area,
        "comparing different areas ({} vs {})",
        baseline.area, current.area
    );
    if baseline.env.host != current.env.host || baseline.env.cpus != current.env.cpus {
        out.notes.push(format!(
            "area {}: baseline recorded on {} ({} cpus), current on {} ({} cpus) — \
             wall metrics compared with generous thresholds",
            baseline.area, baseline.env.host, baseline.env.cpus, current.env.host,
            current.env.cpus
        ));
    }
    if baseline.env.profile != current.env.profile {
        out.notes.push(format!(
            "area {}: baseline profile `{}` vs current `{}` — medians are not comparable; \
             re-record the baseline with the matching profile",
            baseline.area, baseline.env.profile, current.env.profile
        ));
    }
    for (name, base) in &baseline.metrics {
        let Some(cur) = current.metrics.get(name) else {
            out.deltas.push(MetricDelta {
                area: baseline.area.clone(),
                metric: name.clone(),
                unit: base.unit.clone(),
                baseline: base.summary.median,
                current: f64::NAN,
                rel_change: 0.0,
                noise: base.noise(),
                verdict: Verdict::Missing,
            });
            continue;
        };
        let b = base.summary.median;
        let c = cur.summary.median;
        let rel = if b.abs() > 0.0 { (c - b) / b.abs() } else if c == 0.0 { 0.0 } else { f64::INFINITY };
        let noise = base.noise().max(cur.noise());
        // Bad direction: median grew for lower-is-better metrics, shrank
        // otherwise. `spread` separates real drift from sampling noise.
        let bad = if base.lower_is_better { rel } else { -rel };
        let spread = base.summary.mad + cur.summary.mad;
        let significant = bad.abs() > noise && (c - b).abs() > spread;
        let verdict = if !significant {
            Verdict::Unchanged
        } else if bad > 0.0 {
            Verdict::Regressed
        } else {
            Verdict::Improved
        };
        out.deltas.push(MetricDelta {
            area: baseline.area.clone(),
            metric: name.clone(),
            unit: base.unit.clone(),
            baseline: b,
            current: c,
            rel_change: rel,
            noise,
            verdict,
        });
    }
    for (name, cur) in &current.metrics {
        if !baseline.metrics.contains_key(name) {
            out.deltas.push(MetricDelta {
                area: current.area.clone(),
                metric: name.clone(),
                unit: cur.unit.clone(),
                baseline: f64::NAN,
                current: cur.summary.median,
                rel_change: 0.0,
                noise: cur.noise(),
                verdict: Verdict::New,
            });
        }
    }
    out
}

/// Render the comparison as an aligned text table, regressions last so they
/// sit next to the exit status in CI logs.
pub fn render_table(report: &CompareReport) -> String {
    let mut rows: Vec<&MetricDelta> = report.deltas.iter().collect();
    rows.sort_by_key(|d| {
        (
            match d.verdict {
                Verdict::Unchanged => 0,
                Verdict::New => 1,
                Verdict::Missing => 2,
                Verdict::Improved => 3,
                Verdict::Regressed => 4,
            },
            d.area.clone(),
            d.metric.clone(),
        )
    });
    let header = ["area", "metric", "baseline", "current", "change", "noise", "verdict"];
    let fmt_val = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else if v != 0.0 && (v.abs() < 1e-3 || v.abs() >= 1e6) {
            format!("{v:.3e}")
        } else {
            format!("{v:.4}")
        }
    };
    let mut cells: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    for d in rows {
        cells.push(vec![
            d.area.clone(),
            format!("{} ({})", d.metric, d.unit),
            fmt_val(d.baseline),
            fmt_val(d.current),
            format!("{:+.1}%", d.rel_change * 100.0),
            format!("{:.0}%", d.noise * 100.0),
            format!("{:?}", d.verdict).to_lowercase(),
        ]);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for note in &report.notes {
        out.push_str("note: ");
        out.push_str(note);
        out.push('\n');
    }
    for (i, row) in cells.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<w$}", w = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (header.len() - 1)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{EnvFingerprint, MetricKind, MetricRecord};
    use crate::stats::summarize;

    fn report_with(area: &str, metrics: &[(&str, MetricKind, &[f64])]) -> BenchReport {
        let mut r = BenchReport::new(area, EnvFingerprint::default());
        for (name, kind, samples) in metrics {
            r.metrics.insert(
                name.to_string(),
                MetricRecord {
                    unit: "s".into(),
                    kind: *kind,
                    lower_is_better: true,
                    noise: None,
                    summary: summarize(samples),
                },
            );
        }
        r
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = report_with(
            "redist",
            &[
                ("pack", MetricKind::Virtual, &[1.0, 1.0, 1.0]),
                ("wall", MetricKind::Wall, &[0.5, 0.55, 0.52]),
            ],
        );
        let c = compare(&a, &a.clone());
        assert!(!c.has_regressions(), "{c:?}");
        assert_eq!(c.exit_code(), 0);
        assert!(c.deltas.iter().all(|d| d.verdict == Verdict::Unchanged));
    }

    #[test]
    fn artificially_slowed_metric_trips_the_gate() {
        // The acceptance drill: slow one deterministic metric by 2x and the
        // compare must exit nonzero, naming the metric.
        let base = report_with("redist", &[("pack", MetricKind::Virtual, &[1.0, 1.0, 1.0])]);
        let mut cur = base.clone();
        let m = cur.metrics.get_mut("pack").unwrap();
        m.summary.median *= 2.0;
        m.summary.min *= 2.0;
        m.summary.max *= 2.0;
        let c = compare(&base, &cur);
        assert!(c.has_regressions());
        assert_eq!(c.exit_code(), 1);
        let reg: Vec<_> = c.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "pack");
        assert!((reg[0].rel_change - 1.0).abs() < 1e-12);
        assert!(render_table(&c).contains("regressed"));
    }

    #[test]
    fn wall_jitter_within_noise_is_unchanged() {
        // 20% wall drift sits inside the 35% wall threshold.
        let base = report_with("wal", &[("append", MetricKind::Wall, &[1.0, 1.01, 0.99])]);
        let cur = report_with("wal", &[("append", MetricKind::Wall, &[1.2, 1.21, 1.19])]);
        let c = compare(&base, &cur);
        assert!(!c.has_regressions(), "{:?}", c.deltas);
    }

    #[test]
    fn improvement_is_reported_but_passes() {
        let base = report_with("spawn", &[("latency", MetricKind::Virtual, &[2.0, 2.0])]);
        let cur = report_with("spawn", &[("latency", MetricKind::Virtual, &[1.0, 1.0])]);
        let c = compare(&base, &cur);
        assert_eq!(c.exit_code(), 0);
        assert_eq!(c.deltas[0].verdict, Verdict::Improved);
    }

    #[test]
    fn noisy_overlap_does_not_regress() {
        // Medians 10% apart but MADs overlap the gap: not significant even
        // for a virtual metric (nondeterminism surfaced as spread).
        let base = report_with("x", &[("m", MetricKind::Virtual, &[1.0, 0.8, 1.2])]);
        let cur = report_with("x", &[("m", MetricKind::Virtual, &[1.1, 0.9, 1.3])]);
        let c = compare(&base, &cur);
        assert_eq!(c.deltas[0].verdict, Verdict::Unchanged, "{:?}", c.deltas);
    }

    #[test]
    fn missing_and_new_metrics_are_flagged_not_fatal() {
        let base = report_with("a", &[("gone", MetricKind::Count, &[5.0])]);
        let cur = report_with("a", &[("fresh", MetricKind::Count, &[7.0])]);
        let c = compare(&base, &cur);
        assert_eq!(c.exit_code(), 0);
        let verdicts: Vec<Verdict> = c.deltas.iter().map(|d| d.verdict).collect();
        assert!(verdicts.contains(&Verdict::Missing));
        assert!(verdicts.contains(&Verdict::New));
    }

    #[test]
    fn profile_mismatch_is_noted() {
        let base = report_with("a", &[("m", MetricKind::Wall, &[1.0])]);
        let mut cur = base.clone();
        cur.env.profile = "full".into();
        let c = compare(&base, &cur);
        assert!(c.notes.iter().any(|n| n.contains("profile")), "{:?}", c.notes);
    }
}
