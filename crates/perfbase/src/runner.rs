//! The measurement loop: warmup, repeated sampling, robust summarization,
//! and the process-global sink that lets every bench binary contribute
//! metrics to `BENCH_*.json` files without bespoke printing.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

use crate::report::{BenchReport, EnvFingerprint, MetricKind, MetricRecord};
use crate::stats::{summarize, Summary};

/// Records metrics for one area. Wall-clock metrics run `warmup` unrecorded
/// iterations first (JIT-less Rust still benefits: caches, page tables,
/// lazy allocation); deterministic metrics may use `warmup = 0`.
pub struct Recorder {
    report: BenchReport,
    warmup: usize,
    samples: usize,
}

impl Recorder {
    pub fn new(area: &str, env: EnvFingerprint, warmup: usize, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        Recorder {
            report: BenchReport::new(area, env),
            warmup,
            samples,
        }
    }

    fn area(&self) -> &str {
        &self.report.area
    }

    /// Record a wall-clock metric: `f` runs `warmup + samples` times, each
    /// timed run contributing one sample in seconds.
    pub fn wall<F: FnMut()>(&mut self, name: &str, mut f: F) {
        for _ in 0..self.warmup {
            f();
        }
        let samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        self.push(name, "s", MetricKind::Wall, true, summarize(&samples));
    }

    /// Record a wall-clock per-op metric: `f` performs `ops` operations per
    /// call; the sample is nanoseconds per operation.
    pub fn wall_per_op<F: FnMut()>(&mut self, name: &str, ops: u64, mut f: F) {
        assert!(ops > 0);
        for _ in 0..self.warmup {
            f();
        }
        let samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1e9 / ops as f64
            })
            .collect();
        self.push(name, "ns/op", MetricKind::Wall, true, summarize(&samples));
    }

    /// Record a deterministic measurement (virtual seconds, counts): `f`
    /// returns the value directly; it still runs `samples` times so a
    /// nondeterminism bug shows up as nonzero MAD in the report.
    pub fn value<F: FnMut() -> f64>(&mut self, name: &str, unit: &str, kind: MetricKind, mut f: F) {
        let samples: Vec<f64> = (0..self.samples).map(|_| f()).collect();
        self.push(name, unit, kind, true, summarize(&samples));
    }

    /// Record one already-measured value (no repetition — end-to-end macro
    /// numbers that are too expensive to repeat, or aggregates).
    pub fn single(&mut self, name: &str, unit: &str, kind: MetricKind, value: f64) {
        self.push(name, unit, kind, true, summarize(&[value]));
    }

    fn push(&mut self, name: &str, unit: &str, kind: MetricKind, lower_is_better: bool, mut summary: Summary) {
        apply_handicap(self.area(), name, &mut summary);
        let prev = self.report.metrics.insert(
            name.to_string(),
            MetricRecord {
                unit: unit.into(),
                kind,
                lower_is_better,
                noise: None,
                summary,
            },
        );
        assert!(prev.is_none(), "metric {name} recorded twice in area {}", self.report.area);
    }

    /// Mark an already-recorded metric as higher-is-better (throughput,
    /// utilization): the gate then flags significant *drops*.
    pub fn higher_is_better(&mut self, name: &str) {
        self.report
            .metrics
            .get_mut(name)
            .unwrap_or_else(|| panic!("no metric {name}"))
            .lower_is_better = false;
    }

    /// Override the noise threshold of an already-recorded metric.
    pub fn set_noise(&mut self, name: &str, noise: f64) {
        self.report
            .metrics
            .get_mut(name)
            .unwrap_or_else(|| panic!("no metric {name}"))
            .noise = Some(noise);
    }

    pub fn finish(self) -> BenchReport {
        self.report
    }
}

/// Testing hook: `PERFBASE_HANDICAP=area/metric=factor[,...]` multiplies the
/// named metric's statistics by `factor` at record time — an artificial
/// slowdown that lets CI (and the integration tests) prove the regression
/// gate actually trips. `metric` matches by substring; `area/` is optional.
fn apply_handicap(area: &str, name: &str, summary: &mut Summary) {
    let Ok(spec) = std::env::var("PERFBASE_HANDICAP") else {
        return;
    };
    for clause in spec.split(',').filter(|c| !c.is_empty()) {
        let Some((target, factor)) = clause.split_once('=') else {
            continue;
        };
        let Ok(factor) = factor.trim().parse::<f64>() else {
            continue;
        };
        let matches = match target.split_once('/') {
            Some((a, m)) => a == area && name.contains(m),
            None => name.contains(target),
        };
        if matches {
            summary.median *= factor;
            summary.min *= factor;
            summary.max *= factor;
            summary.mad *= factor;
        }
    }
}

/// Process-global metric sink: bench binaries report their headline numbers
/// here (in addition to printing their human tables), and [`flush_to`]
/// turns everything into `BENCH_<area>.json` files. Enabled by setting
/// `PERFBASE_OUT=<dir>`; without it the sink records into memory and the
/// flush is a no-op, so instrumented binaries cost nothing extra.
static SINK: Mutex<BTreeMap<String, BTreeMap<String, MetricRecord>>> =
    Mutex::new(BTreeMap::new());

/// Report one measured value into the global sink under `area`/`name`.
pub fn sink_metric(area: &str, name: &str, unit: &str, kind: MetricKind, value: f64) {
    let mut summary = summarize(&[value]);
    apply_handicap(area, name, &mut summary);
    SINK.lock().entry(area.to_string()).or_default().insert(
        name.to_string(),
        MetricRecord {
            unit: unit.into(),
            kind,
            lower_is_better: true,
            noise: None,
            summary,
        },
    );
}

/// Drain the sink into `BENCH_<area>.json` files under `dir` (one file per
/// area seen). Returns the written paths.
pub fn flush_sink_to(dir: &Path, env: &EnvFingerprint) -> std::io::Result<Vec<std::path::PathBuf>> {
    let drained = std::mem::take(&mut *SINK.lock());
    let mut out = Vec::new();
    for (area, metrics) in drained {
        let mut report = BenchReport::new(&area, env.clone());
        report.metrics = metrics;
        out.push(report.write(dir)?);
    }
    Ok(out)
}

/// Flush the sink to the directory named by `PERFBASE_OUT`, if set. Bench
/// binaries call this at exit (via `reshape_bench::flush_telemetry`).
pub fn flush_sink_env() {
    let Some(dir) = std::env::var("PERFBASE_OUT").ok().filter(|d| !d.is_empty()) else {
        SINK.lock().clear();
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("perfbase: cannot create {}: {e}", dir.display());
        return;
    }
    let env = EnvFingerprint::capture(0, true);
    match flush_sink_to(&dir, &env) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("perfbase: wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("perfbase: cannot write {}: {e}", dir.display()),
    }
}

/// Serialize any value as a pretty JSON file (convenience shared by the
/// driver and tests).
pub fn write_json_file<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let mut body = serde_json::to_string_pretty(value).expect("value serializes");
    body.push('\n');
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_wall_and_value_metrics() {
        let mut r = Recorder::new("t", EnvFingerprint::default(), 1, 5);
        r.wall("sleepless", || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        r.value("det", "s", MetricKind::Virtual, || 1.25);
        r.single("bytes", "bytes", MetricKind::Count, 4096.0);
        let report = r.finish();
        assert_eq!(report.metrics.len(), 3);
        assert_eq!(report.metrics["det"].summary.median, 1.25);
        assert_eq!(report.metrics["det"].summary.mad, 0.0);
        assert_eq!(report.metrics["bytes"].summary.samples, 1);
        assert!(report.metrics["sleepless"].summary.median >= 0.0);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn duplicate_metric_names_panic() {
        let mut r = Recorder::new("t", EnvFingerprint::default(), 0, 1);
        r.single("x", "s", MetricKind::Wall, 1.0);
        r.single("x", "s", MetricKind::Wall, 2.0);
    }

    #[test]
    fn sink_groups_by_area_and_flushes() {
        let dir = std::env::temp_dir().join(format!("perfbase-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        sink_metric("alpha", "m1", "s", MetricKind::Wall, 0.5);
        sink_metric("alpha", "m2", "bytes", MetricKind::Count, 10.0);
        sink_metric("beta", "m1", "s", MetricKind::Virtual, 2.0);
        let paths = flush_sink_to(&dir, &EnvFingerprint::default()).unwrap();
        assert_eq!(paths.len(), 2);
        let alpha = BenchReport::load(&dir.join("BENCH_alpha.json")).unwrap();
        assert_eq!(alpha.metrics.len(), 2);
        assert_eq!(alpha.metrics["m2"].summary.median, 10.0);
        // Drained: a second flush writes nothing.
        assert!(flush_sink_to(&dir, &EnvFingerprint::default()).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
