//! The `BENCH_<area>.json` trajectory file format.
//!
//! Each file is one [`BenchReport`]: a schema version, an environment
//! fingerprint (enough to judge whether two reports are comparable at all),
//! and a map of named metrics with robust statistics. Reports are written
//! pretty-printed with sorted keys so diffs across PRs read cleanly — the
//! files are *meant* to be committed and re-recorded by perf PRs.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// Bump on any incompatible change to the report layout. `compare` refuses
/// to diff across schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// How a metric was measured — drives the default noise threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MetricKind {
    /// Wall-clock time on the recording host: noisy, machine-dependent.
    Wall,
    /// Virtual time on the deterministic simulator: exact run to run.
    Virtual,
    /// A count (bytes, messages, steps): exact run to run.
    Count,
}

impl MetricKind {
    /// Default relative noise threshold for the regression gate: the
    /// fraction by which the median may grow before the change counts as
    /// significant. Deterministic kinds get a tight bound (any drift is a
    /// real algorithmic change); wall time gets a generous one (committed
    /// baselines travel across machines).
    pub fn default_noise(self) -> f64 {
        match self {
            MetricKind::Wall => 0.35,
            MetricKind::Virtual => 0.02,
            MetricKind::Count => 0.001,
        }
    }
}

/// One recorded metric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Unit of the median (by convention: `s`, `ns/op`, `bytes`, `ops`).
    pub unit: String,
    pub kind: MetricKind,
    /// `true` (the default) when smaller is better — time-like metrics.
    /// Throughput metrics set it to `false` so the gate flags *drops*.
    pub lower_is_better: bool,
    /// Per-metric noise override; falls back to the kind's default.
    #[serde(default)]
    pub noise: Option<f64>,
    pub summary: Summary,
}

impl MetricRecord {
    pub fn noise(&self) -> f64 {
        self.noise.unwrap_or_else(|| self.kind.default_noise())
    }
}

/// Where and how a report was recorded. Compared loosely: mismatches are
/// *reported* (a cross-machine diff of wall metrics means little) but never
/// fail the gate by themselves.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnvFingerprint {
    pub host: String,
    pub os: String,
    pub arch: String,
    pub cpus: usize,
    pub rustc: String,
    pub git_sha: String,
    /// Seed the deterministic suites ran with.
    pub seed: u64,
    /// `quick` or `full` — medians are only comparable within one profile.
    pub profile: String,
}

impl EnvFingerprint {
    /// Capture the current environment. Everything degrades to `"unknown"`
    /// rather than failing — a fingerprint is advisory.
    pub fn capture(seed: u64, quick: bool) -> Self {
        let host = std::fs::read_to_string("/etc/hostname")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok())
            .unwrap_or_else(|| "unknown".into());
        let rustc = std::process::Command::new(
            std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into()),
        )
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
        EnvFingerprint {
            host,
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            cpus: std::thread::available_parallelism().map_or(0, |n| n.get()),
            rustc,
            git_sha: git_sha().unwrap_or_else(|| "unknown".into()),
            seed,
            profile: if quick { "quick" } else { "full" }.into(),
        }
    }
}

/// Resolve HEAD by reading `.git` directly (no `git` subprocess: the bench
/// may run in a tree exported without git on the PATH).
fn git_sha() -> Option<String> {
    let root = repo_root()?;
    let head = std::fs::read_to_string(root.join(".git/HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        let sha = std::fs::read_to_string(root.join(".git").join(reference)).ok()?;
        return Some(sha.trim().to_string());
    }
    Some(head.to_string())
}

/// The directory `BENCH_*.json` files live in: the workspace root, found by
/// walking up from the current directory to the first `Cargo.lock`. Falls
/// back to `.` so the tools still work from an exported tree.
pub fn repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return std::env::current_dir().ok();
        }
    }
}

/// One `BENCH_<area>.json` file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    pub schema_version: u32,
    pub area: String,
    pub env: EnvFingerprint,
    pub metrics: BTreeMap<String, MetricRecord>,
}

impl BenchReport {
    pub fn new(area: &str, env: EnvFingerprint) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            area: area.into(),
            env,
            metrics: BTreeMap::new(),
        }
    }

    /// File name for an area: `BENCH_<area>.json`.
    pub fn file_name(area: &str) -> String {
        format!("BENCH_{area}.json")
    }

    /// Write the report (pretty, trailing newline) into `dir`.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(Self::file_name(&self.area));
        let mut body = serde_json::to_string_pretty(self).expect("reports serialize");
        body.push('\n');
        std::fs::write(&path, body)?;
        Ok(path)
    }

    /// Load a report, verifying the schema version.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report: BenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not a BenchReport: {e}", path.display()))?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "{}: schema version {} (this binary speaks {SCHEMA_VERSION}) — re-record the baseline",
                path.display(),
                report.schema_version
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("demo", EnvFingerprint::default());
        r.metrics.insert(
            "pack_seconds".into(),
            MetricRecord {
                unit: "s".into(),
                kind: MetricKind::Virtual,
                lower_is_better: true,
                noise: None,
                summary: summarize(&[0.5, 0.5, 0.5]),
            },
        );
        r
    }

    #[test]
    fn report_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("perfbase-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = sample_report();
        let path = r.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let back = BenchReport::load(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("perfbase-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = sample_report();
        r.schema_version = SCHEMA_VERSION + 1;
        let body = serde_json::to_string_pretty(&r).unwrap();
        let path = dir.join("BENCH_demo.json");
        std::fs::write(&path, body).unwrap();
        let err = BenchReport::load(&path).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noise_defaults_follow_kind() {
        let m = sample_report().metrics["pack_seconds"].clone();
        assert_eq!(m.noise(), MetricKind::Virtual.default_noise());
        let mut m2 = m;
        m2.noise = Some(0.1);
        assert_eq!(m2.noise(), 0.1);
    }
}
