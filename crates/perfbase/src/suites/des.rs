//! Area `des`: the discrete-event core. The event-queue micro tracks raw
//! push/pop throughput (the `O(log n)` heap every simulated transition
//! pays), and the macro metric is the scale sweep — thousands of nodes and
//! tens of thousands of jobs through `run_scale` in one process. Virtual
//! results (makespan, utilization, event count) are bit-deterministic for
//! a fixed seed, so the gate holds them to the 2%/0.1% drift bands; the
//! wall metrics are what the 10k-node CI smoke budget rests on.

use reshape_clustersim::{run_scale, EventQueue, ScaleConfig};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    // Event-queue churn: interleaved pushes and pops at a steady queue
    // depth, the access pattern of a live simulation (not sorted drain).
    let churn = if opts.quick { 20_000u64 } else { 200_000u64 };
    rec.wall_per_op("queue_churn_ns_per_op", churn * 2, || {
        let mut q = EventQueue::new();
        let mut clock = 0.0f64;
        for i in 0..churn {
            // A cheap seeded spread keeps the heap realistically unsorted.
            let jitter = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64 / 1e4;
            q.push(clock + 1.0 + jitter, i);
            if i >= 64 {
                let (t, _) = q.pop().expect("queue holds events");
                clock = t;
            }
        }
        while let Some((_, p)) = q.pop() {
            std::hint::black_box(p);
        }
    });

    // The scale sweep: nodes and jobs far beyond the paper's 36–50-slot
    // experiments, single process, no per-rank threads.
    let cfg = if opts.quick {
        ScaleConfig::new(500, 5_000)
    } else {
        ScaleConfig::new(2_000, 50_000)
    }
    .with_seed(opts.seed);

    let mut walls = Vec::new();
    let mut reports = Vec::new();
    rec.value("scale_makespan_virtual_s", "s", MetricKind::Virtual, || {
        let report = run_scale(&cfg);
        walls.push(report.wall_seconds);
        let makespan = report.makespan;
        reports.push(report);
        makespan
    });
    let report = reports.pop().expect("at least one sample ran");

    rec.single("scale_wall_s", "s", MetricKind::Wall, crate::stats::median(&walls));
    rec.single(
        "scale_events",
        "ops",
        MetricKind::Count,
        report.events_processed as f64,
    );
    rec.single(
        "scale_events_per_sec",
        "ops/s",
        MetricKind::Wall,
        report.events_processed as f64 / crate::stats::median(&walls).max(1e-9),
    );
    rec.higher_is_better("scale_events_per_sec");
    rec.single(
        "scale_utilization",
        "ratio",
        MetricKind::Virtual,
        report.utilization,
    );
    rec.higher_is_better("scale_utilization");
    rec.single(
        "scale_jobs_finished",
        "ops",
        MetricKind::Count,
        report.jobs_finished as f64,
    );
    rec.single(
        "scale_resizes",
        "ops",
        MetricKind::Count,
        (report.expansions + report.shrinks) as f64,
    );
}
