//! Area `clustersim`: macro sweeps through the cluster simulator — the
//! real SchedulerCore driven by calibrated models. Makespan, utilization,
//! and turnaround are *virtual* (bit-deterministic for a fixed seed), so
//! any drift is a genuine policy or cost-model change; the wall metric
//! tracks how fast the simulator itself runs (now the DES engine — the
//! `des` area covers its event-queue and scale-path costs directly).

use reshape_clustersim::{random_workload, ClusterSim, MachineParams};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    let jobs = if opts.quick { 24 } else { 120 };
    let wl = random_workload(opts.seed, jobs, 36);
    let sim = ClusterSim::new(wl.total_procs, MachineParams::system_x());

    let mut walls = Vec::new();
    let mut results = Vec::new();
    rec.value("sweep_makespan_virtual_s", "s", MetricKind::Virtual, || {
        let t0 = std::time::Instant::now();
        let result = sim.run(&wl.jobs);
        walls.push(t0.elapsed().as_secs_f64());
        let makespan = result.makespan;
        results.push(result);
        makespan
    });
    let result = results.pop().expect("at least one sample ran");

    rec.single("sweep_wall_s", "s", MetricKind::Wall, crate::stats::median(&walls));
    rec.single(
        "sweep_utilization",
        "ratio",
        MetricKind::Virtual,
        result.utilization,
    );
    rec.higher_is_better("sweep_utilization");
    rec.single(
        "sweep_mean_turnaround_virtual_s",
        "s",
        MetricKind::Virtual,
        result.telemetry.mean_turnaround,
    );
    rec.single(
        "sweep_p95_turnaround_virtual_s",
        "s",
        MetricKind::Virtual,
        result.telemetry.p95_turnaround,
    );
    rec.single(
        "sweep_bytes_redistributed",
        "bytes",
        MetricKind::Count,
        result.telemetry.bytes_redistributed as f64,
    );
    rec.single(
        "sweep_resizes",
        "ops",
        MetricKind::Count,
        (result.telemetry.expansions + result.telemetry.shrinks) as f64,
    );
}
