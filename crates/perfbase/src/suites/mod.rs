//! The benchmark suites behind `bench perfbase`: one module per area, each
//! producing one `BENCH_<area>.json` report.
//!
//! Micro areas measure library hot paths under wall clock (block-cyclic
//! index math, schedule planning, pack/unpack, WAL append/recover); macro
//! areas run end-to-end scenarios whose headline numbers are *virtual*
//! seconds on the deterministic simulators (redistribution on mpisim, spawn
//! latency, cluster-simulator sweeps, recovery round trip) — those repeat
//! bit-exactly, so the regression gate can hold them to a 2% drift.

mod blockcyclic;
mod clustersim;
mod des;
mod federation;
mod fedtrace;
mod partition;
mod redist;
mod spawn;
mod wal;

use crate::report::{BenchReport, EnvFingerprint};
use crate::runner::Recorder;

/// Suite configuration shared by every area.
#[derive(Clone, Copy, Debug)]
pub struct SuiteOpts {
    /// CI-sized inputs (the committed baselines are recorded quick).
    pub quick: bool,
    /// Seed for the deterministic workload generators.
    pub seed: u64,
    /// Warmup iterations for wall-clock metrics.
    pub warmup: usize,
    /// Samples per metric.
    pub samples: usize,
}

impl Default for SuiteOpts {
    fn default() -> Self {
        SuiteOpts {
            quick: true,
            seed: 42,
            warmup: 2,
            samples: 7,
        }
    }
}

/// Every area, in run order.
pub const AREAS: [&str; 9] = [
    "blockcyclic",
    "redist",
    "wal",
    "spawn",
    "clustersim",
    "des",
    "federation",
    "federation-partition",
    "federation-trace",
];

/// Run one area's suite.
///
/// # Panics
///
/// Panics on an unknown area (the driver validates names first).
pub fn run_area(area: &str, opts: SuiteOpts) -> BenchReport {
    let env = EnvFingerprint::capture(opts.seed, opts.quick);
    let mut rec = Recorder::new(area, env, opts.warmup, opts.samples);
    match area {
        "blockcyclic" => blockcyclic::run(&mut rec, opts),
        "redist" => redist::run(&mut rec, opts),
        "wal" => wal::run(&mut rec, opts),
        "spawn" => spawn::run(&mut rec, opts),
        "clustersim" => clustersim::run(&mut rec, opts),
        "des" => des::run(&mut rec, opts),
        "federation" => federation::run(&mut rec, opts),
        "federation-partition" => partition::run(&mut rec, opts),
        "federation-trace" => fedtrace::run(&mut rec, opts),
        other => panic!("unknown perfbase area `{other}` (areas: {AREAS:?})"),
    }
    rec.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole quick suite runs and every area yields metrics. One test,
    /// smallest sizes — this is the smoke that keeps the suites compiling
    /// against the crates they measure.
    #[test]
    fn quick_suites_produce_metrics() {
        let opts = SuiteOpts {
            quick: true,
            seed: 7,
            warmup: 0,
            samples: 2,
        };
        for area in AREAS {
            let report = run_area(area, opts);
            assert_eq!(report.area, area);
            assert!(
                !report.metrics.is_empty(),
                "area {area} produced no metrics"
            );
            for (name, m) in &report.metrics {
                assert!(
                    m.summary.median.is_finite() && m.summary.median >= 0.0,
                    "{area}/{name}: median {:?}",
                    m.summary
                );
            }
        }
    }
}
