//! Area `wal`: scheduler durability costs. Every SchedulerCore transition
//! pays one WAL append (encode + write + flush) on the hot path, and
//! crash-restart pays a full decode + replay. Both are wall-clock on real
//! files — the numbers CI's crash-restart drills actually spend.

use reshape_core::{
    JobSpec, ProcessorConfig, QueuePolicy, SchedulerCore, TopologyPref, Wal,
};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

/// Drive a real scheduler through `jobs` short lives with an in-memory WAL
/// attached, returning the recorded transition stream in wire format.
fn record_stream(jobs: usize) -> String {
    let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
    let mut now = 0.0;
    for j in 0..jobs {
        let spec = JobSpec::new(
            format!("wal-bench-{j}"),
            TopologyPref::Grid {
                problem_size: 8000,
            },
            ProcessorConfig::new(2, 2),
            6,
        );
        let (id, _) = core.submit(spec, now);
        core.try_schedule(now);
        now += 1.0;
        // Resize points feed the profiler — the record most often appended.
        // One job runs at a time so every transition is always legal,
        // whatever the remap policy decides in between.
        for it in 0..4 {
            core.resize_point(id, 10.0 - it as f64, 0.5, now);
            now += 1.0;
        }
        core.on_finished(id, now);
        now += 1.0;
    }
    core.take_wal().expect("wal attached").encode()
}

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    let jobs = if opts.quick { 60 } else { 400 };
    let stream = record_stream(jobs);
    let records = stream.lines().count();
    rec.single("records", "ops", MetricKind::Count, records as f64);

    let parsed = Wal::decode(&stream).expect("freshly recorded stream decodes");
    let recs: Vec<_> = parsed.records().to_vec();
    let dir = std::env::temp_dir().join(format!("perfbase-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Append: every record encoded, written, and flushed to a fresh
    // file-backed WAL — the write-ahead path each transition pays.
    let path = dir.join("bench.wal");
    rec.wall_per_op("append_ns_per_record", recs.len() as u64, || {
        let mut wal = Wal::create(&path).expect("create WAL");
        for r in &recs {
            wal.append(r.clone());
        }
    });

    // Recover: decode the stream and replay it into a fresh core — the
    // crash-restart cost for this many transitions.
    rec.wall("recover_seconds", || {
        let wal = Wal::decode(&stream).expect("stream decodes");
        let core = SchedulerCore::recover(wal).expect("stream replays");
        std::hint::black_box(core.total_procs());
    });

    std::fs::remove_dir_all(&dir).ok();
}
