//! Micro area `blockcyclic`: the pure index arithmetic every pack/unpack
//! loop and ownership query sits on. Wall-clock ns/op — these are the
//! innermost loops of the data plane, the first place vectorization work
//! (ROADMAP item 4) will show up.

use reshape_blockcyclic::{g2l, l2g, numroc, owner};

use crate::runner::Recorder;
use crate::suites::SuiteOpts;

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    let sweep: u64 = if opts.quick { 200_000 } else { 2_000_000 };
    let nb = 64;

    rec.wall_per_op("numroc_ns_per_op", sweep, || {
        let mut acc = 0usize;
        for i in 0..sweep as usize {
            acc = acc.wrapping_add(numroc(10_000 + (i & 1023), nb, i % 16, 16));
        }
        std::hint::black_box(acc);
    });

    rec.wall_per_op("g2l_l2g_roundtrip_ns_per_op", sweep, || {
        let mut acc = 0usize;
        for g in 0..sweep as usize {
            let (p, l) = g2l(g, nb, 12);
            acc = acc.wrapping_add(l2g(l, nb, p, 12));
        }
        std::hint::black_box(acc);
    });

    rec.wall_per_op("owner_ns_per_op", sweep, || {
        let mut acc = 0usize;
        for g in 0..sweep as usize {
            acc = acc.wrapping_add(owner(g, nb, 12));
        }
        std::hint::black_box(acc);
    });
}
