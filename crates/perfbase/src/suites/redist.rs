//! Area `redist`: the redistribution data plane, micro to macro.
//!
//! * planning (`plan_1d` / `plan_2d`) — wall clock, pure computation;
//! * pack/unpack — the per-block copy loops (`get_block`/`set_block`)
//!   every executor runs, wall clock;
//! * end-to-end `redistribute_2d` over mpisim — *virtual* seconds on the
//!   Gigabit-Ethernet model (deterministic) plus host wall seconds;
//! * the node-loss recovery round trip (buddy replicate + restore vs the
//!   checkpoint funnel) — virtual seconds.

use std::sync::{Arc, Mutex};

use reshape_blockcyclic::{recover_matrix, BuddyStore, Descriptor, DistMatrix};
use reshape_mpisim::{NetModel, Universe};
use reshape_redist::{
    checkpoint_redistribute, plan_1d, plan_2d, redistribute_2d, CheckpointParams,
};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

const NB: usize = 64;

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    planning(rec, opts);
    pack_unpack(rec, opts);
    end_to_end(rec, opts);
    recovery_roundtrip(rec, opts);
}

fn planning(rec: &mut Recorder, opts: SuiteOpts) {
    let n1 = if opts.quick { 1 << 20 } else { 1 << 23 };
    rec.wall("plan1d_seconds", || {
        std::hint::black_box(plan_1d(n1, NB, 12, 16));
    });

    let n2 = if opts.quick { 4096 } else { 12288 };
    let src = Descriptor::square(n2, NB, 3, 4);
    let dst = Descriptor::square(n2, NB, 4, 4);
    rec.wall("plan2d_seconds", || {
        std::hint::black_box(plan_2d(src, dst));
    });
    let plan = plan_2d(src, dst);
    let total: usize = plan.steps.iter().map(Vec::len).sum();
    rec.single("plan2d_transfers", "ops", MetricKind::Count, total as f64);
}

fn pack_unpack(rec: &mut Recorder, opts: SuiteOpts) {
    // Rank (0,0) of a 2×2 grid walks all of its blocks through the
    // executor's pack (get_block) and unpack (set_block) primitives.
    let n = if opts.quick { 1536 } else { 4096 };
    let desc = Descriptor::square(n, NB, 2, 2);
    let src = DistMatrix::from_fn(desc, 0, 0, |i, j| (i * n + j) as f64);
    let mut dst = DistMatrix::<f64>::new(desc, 0, 0);
    let nblocks = n.div_ceil(NB);
    let my_blocks: Vec<(usize, usize)> = (0..nblocks)
        .step_by(2)
        .flat_map(|bi| (0..nblocks).step_by(2).map(move |bj| (bi, bj)))
        .collect();
    let ops = my_blocks.len() as u64;
    rec.wall_per_op("pack_ns_per_block", ops, || {
        for &(bi, bj) in &my_blocks {
            std::hint::black_box(src.get_block(bi, bj));
        }
    });
    let packed: Vec<Vec<f64>> = my_blocks.iter().map(|&(bi, bj)| src.get_block(bi, bj)).collect();
    rec.wall_per_op("unpack_ns_per_block", ops, || {
        for (&(bi, bj), blk) in my_blocks.iter().zip(&packed) {
            dst.set_block(bi, bj, blk);
        }
        std::hint::black_box(&dst);
    });
    rec.single(
        "pack_bytes_per_rank",
        "bytes",
        MetricKind::Count,
        packed.iter().map(|b| b.len() * 8).sum::<usize>() as f64,
    );
}

/// One end-to-end expansion on the simulated cluster: `n × n` doubles move
/// from a 2×2 to a 2×3 grid (quick) or 3×4 (full). Returns per-sample
/// (virtual seconds, wall seconds).
fn e2e_once(n: usize, qr: usize, qc: usize) -> (f64, f64) {
    let (pr, pc) = (2, 2);
    let world = (pr * pc).max(qr * qc);
    let uni = Universe::new(world, 1, NetModel::gigabit_ethernet());
    let deltas: Arc<Mutex<Vec<f64>>> = Arc::default();
    let sink = Arc::clone(&deltas);
    let t_wall = std::time::Instant::now();
    uni.launch(world, None, "perfbase-redist", move |comm| {
        let me = comm.rank();
        let src_desc = Descriptor::square(n, NB, pr, pc);
        let dst_desc = Descriptor::square(n, NB, qr, qc);
        let src = (me < pr * pc)
            .then(|| DistMatrix::from_fn(src_desc, me / pc, me % pc, |i, j| (i * n + j) as f64));
        let plan = plan_2d(src_desc, dst_desc);
        let t0 = comm.vtime();
        let out = redistribute_2d(&comm, &plan, src.as_ref());
        let dt = comm.vtime() - t0;
        assert_eq!(out.is_some(), me < qr * qc);
        sink.lock().expect("delta sink").push(dt);
    })
    .join_ok();
    let wall = t_wall.elapsed().as_secs_f64();
    let virt = deltas
        .lock()
        .expect("delta sink")
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    (virt, wall)
}

fn end_to_end(rec: &mut Recorder, opts: SuiteOpts) {
    let (n, qr, qc) = if opts.quick { (768, 2, 3) } else { (2048, 3, 4) };
    let mut walls = Vec::new();
    rec.value("e2e_expand_virtual_s", "s", MetricKind::Virtual, || {
        let (virt, wall) = e2e_once(n, qr, qc);
        walls.push(wall);
        virt
    });
    let wall_median = crate::stats::median(&walls);
    rec.single("e2e_expand_wall_s", "s", MetricKind::Wall, wall_median);
}

/// The recovery round trip of the `recovery` bench, sized down: 4 ranks on
/// a 2×2 grid, rank 3 dies, survivors rebuild onto 1×3 — buddy path vs the
/// checkpoint funnel, in virtual seconds.
fn recovery_roundtrip(rec: &mut Recorder, opts: SuiteOpts) {
    let n = if opts.quick { 512 } else { 2048 };
    let run_once = || -> (f64, f64, f64) {
        let uni = Universe::new(4, 1, NetModel::gigabit_ethernet());
        let deltas: Arc<Mutex<Vec<(f64, f64, f64)>>> = Arc::default();
        let sink = Arc::clone(&deltas);
        uni.launch(4, None, "perfbase-recovery", move |comm| {
            let me = comm.rank();
            let s = Descriptor::square(n, NB, 2, 2);
            let d = Descriptor::new(n, n, NB, NB, 1, 3);
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * n + j) as f64);
            let t0 = comm.vtime();
            let store = BuddyStore::replicate(&comm, std::slice::from_ref(&src));
            let t_rep = comm.vtime() - t0;
            let t0 = comm.vtime();
            let out = checkpoint_redistribute(
                &comm,
                s,
                d,
                Some(&src),
                &CheckpointParams::default(),
                None,
            );
            let t_ck = comm.vtime() - t0;
            assert_eq!(out.is_some(), me < 3);
            let mut t_rec = 0.0;
            if me != 3 {
                let survivors = [0usize, 1, 2];
                let mine = store.own_snapshot(0);
                let t0 = comm.vtime();
                recover_matrix(&comm, &survivors, &mine, &store, 0, d)
                    .expect("rank 3's buddy is alive")
                    .expect("every survivor owns part of the 1x3 layout");
                t_rec = comm.vtime() - t0;
            }
            sink.lock().expect("delta sink").push((t_rep, t_ck, t_rec));
        })
        .join_ok();
        let deltas = deltas.lock().expect("delta sink");
        let max = |f: &dyn Fn(&(f64, f64, f64)) -> f64| deltas.iter().map(f).fold(0.0, f64::max);
        (max(&|d| d.0), max(&|d| d.1), max(&|d| d.2))
    };
    let mut restores = Vec::new();
    let mut ckpts = Vec::new();
    rec.value("recovery_buddy_replicate_virtual_s", "s", MetricKind::Virtual, || {
        let (rep, ck, res) = run_once();
        restores.push(res);
        ckpts.push(ck);
        rep
    });
    rec.single(
        "recovery_buddy_restore_virtual_s",
        "s",
        MetricKind::Virtual,
        crate::stats::median(&restores),
    );
    rec.single(
        "recovery_ckpt_roundtrip_virtual_s",
        "s",
        MetricKind::Virtual,
        crate::stats::median(&ckpts),
    );
}
