//! Area `federation-partition`: the partition-tolerance machinery. The
//! micro metric is the anti-entropy digest hash — the FNV-1a summary both
//! sides of a heal compute over their shared-lease ledger. The macro
//! metric is the full split-brain cycle: grant → attach → partition →
//! suspicion fence (epoch bump, WAL-journaled) → heal → digest exchange →
//! journaled stale-borrow eviction → release → reclaim. Its virtual end
//! time is bit-deterministic, so the gate holds it to the tight drift
//! band; fence and repair counts ride along as exact counts.

use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};
use reshape_federation::{digest_hash, DigestEntry, Federation, FederationConfig, TenantConfig};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

fn spec(name: &str, procs: usize) -> JobSpec {
    JobSpec::new(
        name,
        TopologyPref::AnyCount { min: 1, max: 64, step: 1 },
        ProcessorConfig::linear(procs),
        100,
    )
}

/// One full split-brain cycle on a two-shard federation. Returns
/// `(virtual end time, fences, heal repairs)`.
fn partition_cycle() -> (f64, u64, u64) {
    let mut fcfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 16)]);
    fcfg.lease.min_spare = 0;
    fcfg.lease.term = 60.0;
    fcfg.lease.grace = 10.0;
    fcfg.lease.suspicion = 5.0;
    fcfg.lease.retry_backoff = 1000.0; // exactly one lease per cycle
    let mut fed = Federation::new(fcfg);
    fed.inject_partition(vec![vec![0], vec![1]], 5.0, 25.0);
    // `big` borrows 2 procs across the soon-to-be-severed pair.
    fed.submit(0, 0, spec("fill", 2), 0.0);
    fed.submit(0, 1, spec("big", 6), 1.0);
    let mut t = 0.0;
    for _ in 0..512 {
        let Some(next) = fed.next_timer() else { break };
        t = next.max(t);
        fed.run_timers(t);
        if t >= 25.0 && fed.quiesced() {
            break;
        }
    }
    assert!(fed.fences() >= 1, "the suspicion timeout must fence");
    assert!(fed.heal_repairs() >= 1, "the heal must repair the stale borrow");
    assert_eq!(fed.live_leases(), 0, "the cycle must resolve every lease");
    (fed.now(), fed.fences(), fed.heal_repairs())
}

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    // Anti-entropy digest hot path: FNV-1a over a 64-lease shared ledger
    // (what each side of a heal computes before trusting a digest).
    let entries: Vec<DigestEntry> = (0..64)
        .map(|i| DigestEntry {
            lease: i,
            lent: i % 2 == 0,
            lender_epoch: i / 7,
            attached: i % 3 == 0,
            global: (0..4).map(|g| (i as usize) * 4 + g).collect(),
        })
        .collect();
    let hashes = if opts.quick { 50_000u64 } else { 500_000u64 };
    rec.wall_per_op("digest_hash_ns_per_op", hashes, || {
        for _ in 0..hashes {
            std::hint::black_box(digest_hash(std::hint::black_box(&entries)));
        }
    });

    // Split-brain cycle, wall clock: fresh federation per cycle — grant,
    // partition, epoch bump + fence, heal digests, journaled repair,
    // reclaim, including all WAL journaling. Allocator jitter across many
    // short-lived federations warrants the wide noise band; the virtual
    // twin below is the tight gate on protocol behaviour.
    let cycles = if opts.quick { 100u64 } else { 500u64 };
    rec.wall_per_op("split_brain_cycle_ns_per_op", cycles, || {
        for _ in 0..cycles {
            std::hint::black_box(partition_cycle());
        }
    });
    rec.set_noise("split_brain_cycle_ns_per_op", 0.6);

    // Split-brain cycle, virtual: bit-deterministic end-to-end time from
    // first submission to post-heal quiescence.
    let mut fences = 0u64;
    let mut repairs = 0u64;
    rec.value("split_brain_cycle_virtual_s", "s", MetricKind::Virtual, || {
        let (end, f, r) = partition_cycle();
        fences = f;
        repairs = r;
        end
    });
    rec.single("split_brain_fences", "ops", MetricKind::Count, fences as f64);
    rec.single("split_brain_repairs", "ops", MetricKind::Count, repairs as f64);
}
