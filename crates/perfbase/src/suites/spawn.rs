//! Area `spawn`: expansion latency. ReSHAPE expansions are spawn-dominated
//! (one sequential `MPI_Comm_spawn` plus intercommunicator merge), which is
//! exactly what ROADMAP item 3 (parallel spawning, warm pools) will attack
//! — this area records the baseline it must beat. Virtual seconds are
//! deterministic on the simulated cluster; wall seconds track the host-side
//! thread-spawn cost.

use std::sync::{Arc, Mutex};

use reshape_mpisim::{NetModel, Universe};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

/// One expansion: `parents` ranks spawn `children` more and merge, the
/// ReSHAPE grow path. Returns (virtual seconds, wall seconds) of the
/// spawn + merge + barrier on rank 0.
fn spawn_once(parents: usize, children: usize) -> (f64, f64) {
    let uni = Universe::new(parents + children, 1, NetModel::gigabit_ethernet());
    let delta: Arc<Mutex<f64>> = Arc::default();
    let sink = Arc::clone(&delta);
    let t_wall = std::time::Instant::now();
    uni.launch(parents, None, "perfbase-spawn", move |comm| {
        let t0 = comm.vtime();
        let bigger = comm.spawn_merge(children, None, "perfbase-kids", |ctx| {
            let merged = ctx.parent.merge();
            merged.barrier();
        });
        bigger.barrier();
        let dt = comm.vtime() - t0;
        if comm.rank() == 0 {
            *sink.lock().expect("delta sink") = dt;
        }
    })
    .join_ok();
    uni.join_spawned();
    let wall = t_wall.elapsed().as_secs_f64();
    let virt = *delta.lock().expect("delta sink");
    (virt, wall)
}

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    let cases: &[(usize, usize)] = if opts.quick {
        &[(2, 2), (4, 4)]
    } else {
        &[(2, 2), (4, 4), (4, 12), (8, 24)]
    };
    for &(parents, children) in cases {
        let mut walls = Vec::new();
        rec.value(
            &format!("expand_{parents}to{}_virtual_s", parents + children),
            "s",
            MetricKind::Virtual,
            || {
                let (virt, wall) = spawn_once(parents, children);
                walls.push(wall);
                virt
            },
        );
        rec.single(
            &format!("expand_{parents}to{}_wall_s", parents + children),
            "s",
            MetricKind::Wall,
            crate::stats::median(&walls),
        );
    }
}
