//! Area `federation-trace`: the observability tax. Causal tracing rides
//! in-band on every bus frame and opens spans on every control-plane
//! transition, so the gate watches what that costs the lease protocol's
//! hottest cycle — and proves the span DAG itself stays deterministic.
//!
//! The headline metric is `trace_overhead_ratio`: one sample times a
//! batch of full lease round trips with tracing off, the same batch with
//! tracing on, and reports on/off — paired per sample so allocator drift
//! hits both sides equally. The gate's default wall-noise threshold
//! applies, which is exactly the acceptance bar: the tracing delta must
//! stay under wall noise. `lease_cycle_span_count` is the bit-exact twin:
//! the number of spans one traced cycle records is a Count metric, so any
//! nondeterminism in span recording trips the 0.1% band immediately.

use std::time::Instant;

use reshape_telemetry::trace;

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::federation::lease_cycle;
use crate::suites::SuiteOpts;

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    let was_on = trace::enabled();
    trace::reset();

    // Absolute round-trip cost with tracing off and on, for the trend
    // lines (same wide noise band as the `federation` area's wall twin —
    // short-lived federations make the allocator jittery).
    let cycles = if opts.quick { 100u64 } else { 500u64 };
    trace::set_enabled(false);
    rec.wall_per_op("lease_round_trip_untraced_ns_per_op", cycles, || {
        for _ in 0..cycles {
            std::hint::black_box(lease_cycle());
        }
    });
    rec.set_noise("lease_round_trip_untraced_ns_per_op", 0.6);
    trace::set_enabled(true);
    rec.wall_per_op("lease_round_trip_traced_ns_per_op", cycles, || {
        for _ in 0..cycles {
            std::hint::black_box(lease_cycle());
        }
        // Keep the global sink bounded between samples; draining is part
        // of the tracing lifecycle, so it stays inside the timed region.
        std::hint::black_box(trace::drain_spans().len());
    });
    rec.set_noise("lease_round_trip_traced_ns_per_op", 0.6);

    // The gated delta: tracing-on vs tracing-off, paired per sample.
    let pair = if opts.quick { 50u64 } else { 200u64 };
    rec.value("trace_overhead_ratio", "x", MetricKind::Wall, || {
        trace::set_enabled(false);
        let t0 = Instant::now();
        for _ in 0..pair {
            std::hint::black_box(lease_cycle());
        }
        let off = t0.elapsed().as_secs_f64();
        trace::set_enabled(true);
        let t0 = Instant::now();
        for _ in 0..pair {
            std::hint::black_box(lease_cycle());
        }
        let on = t0.elapsed().as_secs_f64();
        std::hint::black_box(trace::drain_spans().len());
        on / off.max(1e-12)
    });

    // Bit-deterministic: the spans one traced lease cycle records.
    trace::set_enabled(true);
    rec.value("lease_cycle_span_count", "spans", MetricKind::Count, || {
        trace::reset();
        let _ = lease_cycle();
        trace::drain_spans().len() as f64
    });

    trace::set_enabled(was_on);
    trace::reset();
}
