//! Area `federation`: the sharded multi-tenant control plane. The micro
//! metric is the router's admit hot path — tenant quota check, fair-share
//! bookkeeping, shard choice, core submission — the cost every job pays
//! before any scheduling happens. The macro metric is the lease round
//! trip: a job too wide for any single shard forces an escrowed lend
//! (grant → bus → attach → expiry eviction → release → reclaim), and the
//! virtual time of that full protocol cycle is bit-deterministic, so the
//! gate holds it to the tight drift band.

use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};
use reshape_federation::{Federation, FederationConfig, TenantConfig};

use crate::report::MetricKind;
use crate::runner::Recorder;
use crate::suites::SuiteOpts;

fn narrow_spec(i: u64) -> JobSpec {
    JobSpec::new(
        format!("j{i}"),
        TopologyPref::AnyCount { min: 1, max: 8, step: 1 },
        ProcessorConfig::linear(2),
        3,
    )
}

/// A federation whose quotas and queue bounds never bind: every
/// submission exercises the pure admit path.
fn admit_fed() -> Federation {
    let tenants = (0..4).map(|_| TenantConfig::new(1 << 30, 1.0, 1 << 30)).collect();
    Federation::new(FederationConfig::new(vec![32; 4], tenants))
}

/// One full lease protocol cycle: a 6-processor job fits no 4-wide shard,
/// so admitting it requires a lend — escrowed grant, bus delivery, borrow
/// attach, expiry eviction, release, reclaim. Pump timers to quiescence
/// and return `(virtual end time, leases granted)`.
pub(crate) fn lease_cycle() -> (f64, u64) {
    let mut fcfg = FederationConfig::new(vec![4, 4, 4], vec![TenantConfig::new(64, 1.0, 16)]);
    fcfg.lease.min_spare = 1;
    let mut fed = Federation::new(fcfg);
    let spec = JobSpec::new(
        "wide",
        TopologyPref::AnyCount { min: 1, max: 64, step: 1 },
        ProcessorConfig::linear(6),
        4,
    );
    fed.submit(0, 0, spec, 0.0);
    let mut t = 0.0;
    for _ in 0..256 {
        let Some(next) = fed.next_timer() else { break };
        t = next.max(t);
        fed.run_timers(t);
        if fed.quiesced() {
            break;
        }
    }
    let granted = fed.leases().count() as u64;
    assert!(granted >= 1, "the wide job must force at least one lease");
    assert_eq!(fed.live_leases(), 0, "the cycle must resolve every lease");
    (fed.now(), granted)
}

pub fn run(rec: &mut Recorder, opts: SuiteOpts) {
    // Router admit hot path: submissions spread over four tenants into a
    // four-shard pool with unbound quotas — quota check, fair-share
    // bookkeeping, shard choice, core submission, ledger update.
    let admits = if opts.quick { 4_000u64 } else { 40_000u64 };
    rec.wall_per_op("router_admit_ns_per_op", admits, || {
        let mut fed = admit_fed();
        for i in 0..admits {
            let notices = fed.submit((i % 4) as u32, i, narrow_spec(i), i as f64 * 0.25);
            std::hint::black_box(notices);
        }
    });

    // Lease round trip, wall clock: fresh federation per cycle, the
    // protocol's end-to-end CPU cost including WAL journaling. Allocator
    // behaviour across many short-lived federations makes this jittery,
    // hence the wide noise band — the virtual twin below is the tight
    // gate on protocol behaviour.
    let cycles = if opts.quick { 200u64 } else { 1_000u64 };
    rec.wall_per_op("lease_round_trip_ns_per_op", cycles, || {
        for _ in 0..cycles {
            std::hint::black_box(lease_cycle());
        }
    });
    rec.set_noise("lease_round_trip_ns_per_op", 0.6);

    // Lease round trip, virtual: grant → attach → expiry evict → reclaim
    // under the default LeaseConfig. Bit-deterministic.
    let mut granted = 0u64;
    rec.value("lease_round_trip_virtual_s", "s", MetricKind::Virtual, || {
        let (end, g) = lease_cycle();
        granted = g;
        end
    });
    rec.single("lease_cycle_grants", "ops", MetricKind::Count, granted as f64);
}
