//! Robust summary statistics for benchmark samples.
//!
//! Benchmark distributions are heavy-tailed (page faults, scheduler
//! preemption, first-touch allocation), so the recorder reports the
//! **median** as the central value and the **median absolute deviation**
//! (MAD) as the spread, after rejecting outliers that sit further than
//! [`OUTLIER_K`] scaled MADs from the raw median — the classic robust
//! filter. Means and standard deviations are not used anywhere: one bad
//! sample would poison them, and the regression gate must not flap because
//! CI shared a core with another job for 50 ms.

use serde::{Deserialize, Serialize};

/// Samples further than this many scaled MADs from the median are dropped.
pub const OUTLIER_K: f64 = 5.0;

/// 1.4826 · MAD estimates the standard deviation for normal data; using the
/// scaled form keeps [`OUTLIER_K`] comparable to a "k sigma" rule.
pub const MAD_SCALE: f64 = 1.4826;

/// Robust summary of one metric's samples.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Median of the samples that survived outlier rejection.
    pub median: f64,
    /// Scaled median absolute deviation of the surviving samples.
    pub mad: f64,
    pub min: f64,
    pub max: f64,
    /// Samples taken (after warmup).
    pub samples: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
}

/// Median of a slice (averages the two central elements for even lengths).
/// Returns 0.0 for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite benchmark samples"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Scaled median absolute deviation around `center`.
pub fn mad(values: &[f64], center: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let devs: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    MAD_SCALE * median(&devs)
}

/// Summarize samples with outlier rejection: samples further than
/// [`OUTLIER_K`] scaled MADs from the raw median are dropped, then the
/// median/MAD/min/max of the survivors are reported. When the raw MAD is
/// zero (deterministic virtual-time measurements), nothing is rejected —
/// every sample equal to the median is a survivor by definition, and a
/// zero-MAD filter must not reject legitimate repeats.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    let m0 = median(samples);
    let d0 = mad(samples, m0);
    let kept: Vec<f64> = if d0 > 0.0 {
        samples
            .iter()
            .copied()
            .filter(|v| (v - m0).abs() <= OUTLIER_K * d0)
            .collect()
    } else {
        samples.to_vec()
    };
    let m = median(&kept);
    Summary {
        median: m,
        mad: mad(&kept, m),
        min: kept.iter().copied().fold(f64::INFINITY, f64::min),
        max: kept.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        samples: samples.len(),
        rejected: samples.len() - kept.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_of_constant_data_is_zero() {
        let v = [5.0; 8];
        assert_eq!(mad(&v, median(&v)), 0.0);
    }

    #[test]
    fn summarize_keeps_clean_data_intact() {
        let v = [1.0, 1.1, 0.9, 1.05, 0.95];
        let s = summarize(&v);
        assert_eq!(s.samples, 5);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.median, 1.0);
        assert!(s.mad > 0.0);
        assert_eq!(s.min, 0.9);
        assert_eq!(s.max, 1.1);
    }

    #[test]
    fn planted_outliers_are_rejected() {
        // 20 tight samples around 1.0 plus two wild ones: the summary must
        // report the tight cluster, not the contaminated extremes.
        let mut v: Vec<f64> = (0..20).map(|i| 1.0 + 0.001 * i as f64).collect();
        v.push(50.0);
        v.push(120.0);
        let s = summarize(&v);
        assert_eq!(s.rejected, 2, "{s:?}");
        assert!(s.max < 1.1, "{s:?}");
        assert!((s.median - 1.0095).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn deterministic_samples_survive_zero_mad() {
        // Virtual-time benches repeat exactly; a naive k·MAD filter with
        // MAD = 0 would reject everything off the median (there is nothing
        // off the median, but guard the degenerate path explicitly).
        let s = summarize(&[2.5, 2.5, 2.5, 2.5]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mad, 0.0);
    }

    #[test]
    fn single_outlier_in_deterministic_data() {
        // One bad sample among repeats: MAD is 0, so rejection is skipped,
        // but the median still lands on the repeated value.
        let s = summarize(&[2.5, 2.5, 2.5, 2.5, 9.0]);
        assert_eq!(s.median, 2.5);
    }
}
