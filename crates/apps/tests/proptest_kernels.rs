//! Property tests for the distributed kernels: for randomly drawn problem
//! sizes, blockings and grid shapes, the distributed results must match the
//! sequential references exactly. Case counts are modest because each case
//! launches real threads.

use proptest::prelude::*;
use reshape_apps::{fft, jacobi, lu, mm, seq};
use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_grid::GridContext;
use reshape_mpisim::{NetModel, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn lu_matches_sequential_for_random_layouts(
        blocks in 2usize..6,
        nb in 2usize..5,
        pr in 1usize..4,
        pc in 1usize..4,
        seed in 0u64..1000,
    ) {
        // n must be a multiple of nb for the blocked LU.
        let n = blocks * nb * pr.max(pc).max(2);
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "plu", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let f = seq::test_matrix_at(n, seed);
                let mut a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), f);
                lu::lu_factorize(&grid, &mut a);
                if let Some(full) = a.gather(&grid) {
                    let mut reference = seq::test_matrix(n, seed);
                    seq::lu_nopivot(&mut reference, n);
                    for (x, y) in full.iter().zip(&reference) {
                        assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()), "{x} vs {y}");
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn summa_matches_sequential_for_random_layouts(
        blocks in 2usize..5,
        nb in 2usize..5,
        pr in 1usize..4,
        pc in 1usize..4,
    ) {
        let n = blocks * nb * pr.max(pc).max(2);
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "pmm", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let fa = move |i: usize, j: usize| ((i * 3 + j * 7) % 11) as f64 - 5.0;
                let fb = move |i: usize, j: usize| ((i * 5 + j) % 7) as f64 - 3.0;
                let a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), fa);
                let b = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), fb);
                let mut c = DistMatrix::new(desc, grid.myrow(), grid.mycol());
                mm::summa(&grid, &a, &b, &mut c);
                if let Some(full) = c.gather(&grid) {
                    let af: Vec<f64> = (0..n * n).map(|x| fa(x / n, x % n)).collect();
                    let bf: Vec<f64> = (0..n * n).map(|x| fb(x / n, x % n)).collect();
                    let reference = seq::matmul(&af, &bf, n);
                    for (x, y) in full.iter().zip(&reference) {
                        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn jacobi_matches_sequential_for_random_layouts(
        n in 8usize..40,
        nb in 1usize..6,
        p in 1usize..5,
        sweeps in 1usize..6,
    ) {
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "pjac", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let fa = seq::test_matrix_at(n, 17);
                let a_desc = Descriptor::new(n, n, n, nb, 1, p);
                let v_desc = Descriptor::new(1, n, 1, nb, 1, p);
                let a = DistMatrix::from_fn(a_desc, 0, grid.mycol(), &fa);
                let b = DistMatrix::from_fn(v_desc, 0, grid.mycol(), |_, j| (j % 5) as f64);
                let mut x = DistMatrix::new(v_desc, 0, grid.mycol());
                for _ in 0..sweeps {
                    jacobi::jacobi_sweep(&grid, &a, &mut x, &b);
                }
                if let Some(xs) = x.gather(&grid) {
                    let af = seq::test_matrix(n, 17);
                    let bf: Vec<f64> = (0..n).map(|j| (j % 5) as f64).collect();
                    let mut xr = vec![0.0; n];
                    for _ in 0..sweeps {
                        xr = seq::jacobi_sweep(&af, &bf, &xr, n);
                    }
                    for (x, y) in xs.iter().zip(&xr) {
                        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn fft_round_trips_for_random_layouts(
        logn in 3u32..6,
        nb in 1usize..5,
        p in 1usize..5,
    ) {
        let n = 1usize << logn;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "pfft", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let d = Descriptor::new(n, n, n, nb, 1, p);
                let mut re = DistMatrix::from_fn(d, 0, grid.mycol(), |i, j| {
                    ((i * 13 + j * 29) % 31) as f64 - 15.0
                });
                let mut im = DistMatrix::<f64>::new(d, 0, grid.mycol());
                let re0 = re.local_data().to_vec();
                fft::fft2d(&grid, &mut re, &mut im, false);
                fft::fft2d(&grid, &mut re, &mut im, true);
                for (a, b) in re.local_data().iter().zip(&re0) {
                    assert!((a - b).abs() < 1e-7, "{a} vs {b}");
                }
                for v in im.local_data() {
                    assert!(v.abs() < 1e-7);
                }
            })
            .join_ok();
    }
}
