//! Sequential reference implementations used to verify the distributed
//! kernels. Deliberately simple and obviously correct.

/// In-place LU factorization without pivoting: `a` (row-major `n × n`)
/// becomes `L\U` with unit lower diagonal. The distributed kernels operate
/// on diagonally dominant matrices, for which pivot-free LU is stable.
pub fn lu_nopivot(a: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    for k in 0..n {
        let pivot = a[k * n + k];
        assert!(pivot.abs() > 1e-300, "zero pivot at {k}; matrix not diagonally dominant?");
        for i in (k + 1)..n {
            a[i * n + k] /= pivot;
            let lik = a[i * n + k];
            for j in (k + 1)..n {
                a[i * n + j] -= lik * a[k * n + j];
            }
        }
    }
}

/// Dense row-major matrix multiply `c = a * b` for `n × n`.
pub fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// One Jacobi sweep on `Ax = b`: returns the updated `x`.
pub fn jacobi_sweep(a: &[f64], b: &[f64], x: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            if j != i {
                s += a[i * n + j] * x[j];
            }
        }
        out[i] = (b[i] - s) / a[i * n + i];
    }
    out
}

/// Direct O(n²) DFT of a complex sequence (reference for FFT tests).
pub fn dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut or_ = vec![0.0; n];
    let mut oi = vec![0.0; n];
    for k in 0..n {
        for t in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            let (s, c) = ang.sin_cos();
            or_[k] += re[t] * c - im[t] * s;
            oi[k] += re[t] * s + im[t] * c;
        }
    }
    (or_, oi)
}

/// Iterative radix-2 Cooley–Tukey FFT, in place. `n` must be a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wsin, wcos) = ang.sin_cos();
        for start in (0..n).step_by(len) {
            let mut wr = 1.0;
            let mut wi = 0.0;
            for k in 0..len / 2 {
                let (er, ei) = (re[start + k], im[start + k]);
                let (or_, oi) = (re[start + k + len / 2], im[start + k + len / 2]);
                let tr = or_ * wr - oi * wi;
                let ti = or_ * wi + oi * wr;
                re[start + k] = er + tr;
                im[start + k] = ei + ti;
                re[start + k + len / 2] = er - tr;
                im[start + k + len / 2] = ei - ti;
                let nwr = wr * wcos - wi * wsin;
                wi = wr * wsin + wi * wcos;
                wr = nwr;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= inv;
        }
        for v in im.iter_mut() {
            *v *= inv;
        }
    }
}

/// A reproducible diagonally dominant test matrix.
pub fn test_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut a = vec![0.0; n * n];
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = next();
                a[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        a[i * n + i] = row_sum + 1.0; // strict diagonal dominance
    }
    a
}

/// The same matrix element-by-element, for distributed `from_fn` builders.
/// Must agree exactly with [`test_matrix`].
pub fn test_matrix_at(n: usize, seed: u64) -> impl Fn(usize, usize) -> f64 {
    let full = test_matrix(n, seed);
    move |i, j| full[i * n + j]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_reconstructs_matrix() {
        let n = 12;
        let a0 = test_matrix(n, 7);
        let mut a = a0.clone();
        lu_nopivot(&mut a, n);
        // Rebuild A = L * U and compare.
        let mut rebuilt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { a[i * n + k] };
                    let u = if k <= j { a[k * n + j] } else { 0.0 };
                    if k <= i {
                        s += l * u;
                    }
                }
                rebuilt[i * n + j] = s;
            }
        }
        for (x, y) in rebuilt.iter().zip(&a0) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let n = 16;
        let a = test_matrix(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
            .collect();
        let mut x = vec![0.0; n];
        for _ in 0..200 {
            x = jacobi_sweep(&a, &b, &x, n);
        }
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn fft_matches_dft() {
        let n = 32;
        let re0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let im0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let (dr, di) = dft(&re0, &im0);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_inplace(&mut re, &mut im, false);
        for k in 0..n {
            assert!((re[k] - dr[k]).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - di[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_round_trip() {
        let n = 64;
        let re0: Vec<f64> = (0..n).map(|i| (i * i % 17) as f64).collect();
        let im0 = vec![0.0; n];
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for k in 0..n {
            assert!((re[k] - re0[k]).abs() < 1e-9);
            assert!(im[k].abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_identity() {
        let n = 8;
        let a = test_matrix(n, 1);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        assert_eq!(matmul(&a, &eye, n), a);
    }

    #[test]
    fn test_matrix_is_deterministic_and_dominant() {
        let a = test_matrix(10, 42);
        let b = test_matrix(10, 42);
        assert_eq!(a, b);
        let f = test_matrix_at(10, 42);
        assert_eq!(f(3, 7), a[37]);
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| a[i * 10 + j].abs()).sum();
            assert!(a[i * 10 + i] > off);
        }
    }
}
