//! # reshape-apps — the paper's five workload applications
//!
//! Table 1 of the ReSHAPE paper evaluates five iterative applications; all
//! five are implemented here over the simulated MPI substrate and verified
//! against sequential references:
//!
//! | Paper | Here |
//! |---|---|
//! | LU factorization (`PDGETRF`) | [`lu::lu_factorize`] (workload kernel; [`lu_pivot::lu_factorize_pivoted`] adds full partial pivoting) |
//! | Matrix multiplication (`PDGEMM`) | [`mm::summa`] |
//! | Synthetic master–worker | [`masterworker::master_worker_round`] |
//! | Iterative dense Jacobi solver | [`jacobi::jacobi_sweep`] |
//! | 2-D FFT image transform | [`fft::fft2d`] |
//!
//! The `*_app` factories wrap each kernel as a resizable
//! [`AppDef`]: one outer iteration performs
//! the kernel on genuinely distributed data *and* advances the virtual
//! clock by a modeled compute time `flops / (rate · p)`, so schedulers see
//! realistic iteration-time scaling even at test-size problems while all
//! data movement (panel broadcasts, allreduces, transposes,
//! redistributions) is real.

pub mod fft;
pub mod jacobi;
pub mod lu;
pub mod lu_pivot;
pub mod masterworker;
pub mod mm;
pub mod seq;

use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_core::driver::AppDef;

/// Effective per-processor compute rate (flops/s) used for modeled compute
/// time. Roughly a PowerPC 970's sustained DGEMM rate, matching the paper's
/// System X nodes.
pub const DEFAULT_RATE: f64 = 1.5e9;

/// Cheap strictly-diagonally-dominant element generator (no global
/// materialization, usable at any problem size).
pub fn dominant_elem(n: usize) -> impl Fn(usize, usize) -> f64 + Clone + Send + Sync + 'static {
    move |i, j| {
        if i == j {
            n as f64
        } else {
            // Pseudo-random in [-0.5, 0.5), deterministic in (i, j).
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((j as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
            let h = (h ^ (h >> 29)).wrapping_mul(0xBF58476D1CE4E5B9);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }
    }
}

/// Overwrite a distributed matrix's local panel from a global-index
/// formula.
pub fn refill(m: &mut DistMatrix<f64>, f: impl Fn(usize, usize) -> f64) {
    let d = m.desc;
    let (pr, pc) = (m.myrow, m.mycol);
    for li in 0..m.local_rows() {
        let gi = d.local_to_global_row(li, pr);
        for lj in 0..m.local_cols() {
            let gj = d.local_to_global_col(lj, pc);
            m.set_local(li, lj, f(gi, gj));
        }
    }
}

/// Resizable LU workload: each outer iteration performs one full
/// factorization of a fresh `n × n` matrix (paper: "a single job consisted
/// of ten iterations of the task, e.g., ten LU factorizations").
pub fn lu_app(n: usize, nb: usize, rate: f64) -> AppDef {
    let elem = dominant_elem(n);
    let init_elem = elem.clone();
    AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, nb, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(
                desc,
                grid.myrow(),
                grid.mycol(),
                &init_elem,
            )]
        },
        move |grid, mats, _iter| {
            refill(&mut mats[0], &elem);
            lu::lu_factorize(grid, &mut mats[0]);
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm().advance(lu::lu_flops(n) / (rate * p));
            if grid.comm().rank() == 0 {
                reshape_telemetry::incr("apps.iterations.lu", 1);
            }
        },
    )
}

/// Resizable matrix-multiplication workload (`C = A · B` per iteration).
pub fn mm_app(n: usize, nb: usize, rate: f64) -> AppDef {
    let elem = dominant_elem(n);
    let init_elem = elem.clone();
    AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, nb, grid.nprow(), grid.npcol());
            let a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), &init_elem);
            let b = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                init_elem(j, i)
            });
            let c = DistMatrix::new(desc, grid.myrow(), grid.mycol());
            vec![a, b, c]
        },
        move |grid, mats, _iter| {
            let (ab, c) = mats.split_at_mut(2);
            refill(&mut c[0], |_, _| 0.0);
            mm::summa(grid, &ab[0], &ab[1], &mut c[0]);
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm().advance(mm::mm_flops(n) / (rate * p));
            if grid.comm().rank() == 0 {
                reshape_telemetry::incr("apps.iterations.mm", 1);
            }
        },
    )
}

/// Resizable Jacobi workload: the iterate `x` persists (and is
/// redistributed) across resizes; each outer iteration is a fixed number of
/// sweeps.
pub fn jacobi_app(n: usize, nb: usize, sweeps_per_iter: usize, rate: f64) -> AppDef {
    let elem = dominant_elem(n);
    let init_elem = elem.clone();
    AppDef::new(
        move |grid| {
            let p = grid.npcol();
            let a_desc = Descriptor::new(n, n, n, nb, 1, p);
            let v_desc = Descriptor::new(1, n, 1, nb, 1, p);
            let a = DistMatrix::from_fn(a_desc, 0, grid.mycol(), &init_elem);
            let b = DistMatrix::from_fn(v_desc, 0, grid.mycol(), |_, j| (j % 13) as f64 - 6.0);
            let x = DistMatrix::new(v_desc, 0, grid.mycol());
            vec![a, x, b]
        },
        move |grid, mats, _iter| {
            let (a, rest) = mats.split_at_mut(1);
            let (x, b) = rest.split_at_mut(1);
            for _ in 0..sweeps_per_iter {
                jacobi::jacobi_sweep(grid, &a[0], &mut x[0], &b[0]);
            }
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm()
                .advance(sweeps_per_iter as f64 * jacobi::jacobi_flops(n) / (rate * p));
            if grid.comm().rank() == 0 {
                reshape_telemetry::incr("apps.iterations.jacobi", 1);
            }
        },
    )
}

/// Resizable 2-D FFT workload: each outer iteration transforms a fresh
/// `n × n` image (forward).
pub fn fft_app(n: usize, nb: usize, rate: f64) -> AppDef {
    AppDef::new(
        move |grid| {
            let p = grid.npcol();
            let d = Descriptor::new(n, n, n, nb, 1, p);
            let re = DistMatrix::from_fn(d, 0, grid.mycol(), |i, j| {
                ((i * 31 + j * 7) % 251) as f64 / 125.0 - 1.0
            });
            let im = DistMatrix::new(d, 0, grid.mycol());
            vec![re, im]
        },
        move |grid, mats, _iter| {
            let (re, im) = mats.split_at_mut(1);
            refill(&mut im[0], |_, _| 0.0);
            refill(&mut re[0], |i, j| ((i * 31 + j * 7) % 251) as f64 / 125.0 - 1.0);
            fft::fft2d(grid, &mut re[0], &mut im[0], false);
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm().advance(fft::fft_flops(n) / (rate * p));
            if grid.comm().rank() == 0 {
                reshape_telemetry::incr("apps.iterations.fft", 1);
            }
        },
    )
}

/// Resizable master–worker workload: no global data, `units` fixed-time
/// work units per iteration.
pub fn mw_app(units: usize, unit_time: f64, chunk: usize) -> AppDef {
    AppDef::new(
        |_grid| Vec::new(),
        move |grid, _mats, _iter| {
            masterworker::master_worker_round(grid.comm(), units, unit_time, chunk);
            if grid.comm().rank() == 0 {
                reshape_telemetry::incr("apps.iterations.mw", 1);
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_elem_is_dominant_and_deterministic() {
        let f = dominant_elem(100);
        let g = dominant_elem(100);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(f(i, j), g(i, j));
                if i != j {
                    assert!(f(i, j).abs() <= 0.5);
                } else {
                    assert_eq!(f(i, j), 100.0);
                }
            }
        }
    }

    #[test]
    fn refill_covers_local_panel() {
        let d = Descriptor::square(8, 2, 2, 2);
        let mut m = DistMatrix::<f64>::new(d, 1, 0);
        refill(&mut m, |i, j| (i * 8 + j) as f64);
        for li in 0..m.local_rows() {
            let gi = d.local_to_global_row(li, 1);
            for lj in 0..m.local_cols() {
                let gj = d.local_to_global_col(lj, 0);
                assert_eq!(m.get_local(li, lj), (gi * 8 + gj) as f64);
            }
        }
    }
}
