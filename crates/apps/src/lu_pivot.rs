//! Distributed blocked LU factorization **with partial pivoting** — the
//! full `PDGETRF` semantics.
//!
//! [`crate::lu::lu_factorize`] omits pivoting (safe for the workloads'
//! diagonally dominant matrices); this variant implements the pivoted
//! panel factorization for general matrices:
//!
//! * per panel column: the owning process column finds the max-|value|
//!   pivot below the diagonal (allgather of local candidates along the
//!   process column), the pivot row index is shared along process rows,
//!   and the two *full* global rows are swapped eagerly (local swap when
//!   both live on one process row, a point-to-point exchange between the
//!   two process rows otherwise);
//! * elimination proceeds column by column inside the panel (pivot row
//!   segment broadcast down the process column);
//! * the trailing update is the same row/column panel-broadcast GEMM as
//!   the unpivoted kernel.
//!
//! Returns the pivot vector `piv` with `piv[g] = r` meaning "at step `g`,
//! global rows `g` and `r` were swapped" (the `IPIV` convention).

use reshape_blockcyclic::{g2l, DistMatrix};
use reshape_grid::GridContext;
use reshape_mpisim::ReduceOp;

/// In-place pivoted LU: on return `a` holds `L\U` of `P·A` (unit lower
/// diagonal) and the returned vector records the row interchanges.
/// Collective over `grid`.
pub fn lu_factorize_pivoted(grid: &GridContext, a: &mut DistMatrix<f64>) -> Vec<usize> {
    let d = a.desc;
    assert_eq!(d.m, d.n, "LU needs a square matrix");
    assert_eq!(d.mb, d.nb, "LU needs square blocks");
    assert_eq!(d.m % d.nb, 0, "block size must divide the matrix");
    assert_eq!((d.nprow, d.npcol), (grid.nprow(), grid.npcol()));
    let nb = d.nb;
    let n = d.m;
    let n_blocks = n / nb;
    let (myrow, mycol) = (grid.myrow(), grid.mycol());
    let mut piv = Vec::with_capacity(n);

    for k in 0..n_blocks {
        let prow = k % d.nprow;
        let pcol = k % d.npcol;
        let col_lo = k * nb;
        let col_hi = col_lo + nb;

        // ---- pivoted panel factorization (columns col_lo..col_hi) ----
        for gj in col_lo..col_hi {
            // 1. Pivot search in column gj, rows gj..n (owners: process
            //    column pcol).
            let pivot_row = if mycol == pcol {
                let (_, lj) = g2l(gj, nb, d.npcol);
                // Local best (|value|, global row).
                let mut best = (f64::NEG_INFINITY, usize::MAX);
                for li in 0..a.local_rows() {
                    let gi = d.local_to_global_row(li, myrow);
                    if gi >= gj {
                        let v = a.get_local(li, lj).abs();
                        if v > best.0 || (v == best.0 && gi < best.1) {
                            best = (v, gi);
                        }
                    }
                }
                // Combine along the process column: max |value|, ties to
                // the smallest row index.
                let cands = grid.col_comm().allgather(&[best.0, best.1 as f64]);
                let mut win = (f64::NEG_INFINITY, usize::MAX);
                for c in &cands {
                    let (v, gi) = (c[0], c[1] as usize);
                    if v > win.0 || (v == win.0 && gi < win.1) {
                        win = (v, gi);
                    }
                }
                assert!(
                    win.0 > 0.0,
                    "matrix is singular: zero pivot column at {gj}"
                );
                win.1
            } else {
                0
            };
            // Share the pivot row with every process column.
            let pivot_row = grid.row_bcast(pcol, &[pivot_row as u64])[0] as usize;
            piv.push(pivot_row);

            // 2. Swap full global rows gj <-> pivot_row (every process
            //    column handles its own segment).
            if pivot_row != gj {
                swap_global_rows(grid, a, gj, pivot_row);
            }

            // 3. Elimination below gj within the panel. The pivot row's
            //    panel segment (columns gj..col_hi) comes down the process
            //    column from its owner row.
            if mycol == pcol {
                let (own_r, lpi) = g2l(gj, nb, d.nprow);
                let seg: Vec<f64> = if myrow == own_r {
                    (gj..col_hi)
                        .map(|c| a.get_local(lpi, g2l(c, nb, d.npcol).1))
                        .collect()
                } else {
                    Vec::new()
                };
                let seg = grid.col_bcast(own_r, &seg);
                let pivot_val = seg[0];
                for li in 0..a.local_rows() {
                    let gi = d.local_to_global_row(li, myrow);
                    if gi > gj {
                        let (_, lj) = g2l(gj, nb, d.npcol);
                        let l = a.get_local(li, lj) / pivot_val;
                        a.set_local(li, lj, l);
                        for (off, c) in (gj + 1..col_hi).enumerate() {
                            let (_, lc) = g2l(c, nb, d.npcol);
                            let cur = a.get_local(li, lc);
                            a.set_local(li, lc, cur - l * seg[off + 1]);
                        }
                    }
                }
            }
            grid.barrier();
        }

        // ---- U row panel + trailing update (as in the unpivoted kernel) --
        let my_rows: Vec<usize> = ((k + 1)..n_blocks)
            .filter(|bi| bi % d.nprow == myrow)
            .collect();
        let my_cols: Vec<usize> = ((k + 1)..n_blocks)
            .filter(|bj| bj % d.npcol == mycol)
            .collect();

        // Diagonal block (now factored in place) broadcast along its row
        // for the U panel TRSM.
        let diag = if (myrow, mycol) == (prow, pcol) {
            a.get_block(k, k)
        } else {
            Vec::new()
        };
        let diag_for_row = if myrow == prow {
            grid.row_bcast(pcol, &diag)
        } else {
            Vec::new()
        };
        if myrow == prow {
            for &bj in &my_cols {
                let mut blk = a.get_block(k, bj);
                trsm_left_unit_lower(&mut blk, &diag_for_row, nb);
                a.set_block(k, bj, &blk);
            }
        }

        // Panel broadcasts.
        let l_panel: Vec<f64> = if mycol == pcol {
            let mut buf = Vec::with_capacity(my_rows.len() * nb * nb);
            for &bi in &my_rows {
                buf.extend_from_slice(&a.get_block(bi, k));
            }
            grid.row_bcast(pcol, &buf)
        } else {
            grid.row_bcast(pcol, &[])
        };
        let u_panel: Vec<f64> = if myrow == prow {
            let mut buf = Vec::with_capacity(my_cols.len() * nb * nb);
            for &bj in &my_cols {
                buf.extend_from_slice(&a.get_block(k, bj));
            }
            grid.col_bcast(prow, &buf)
        } else {
            grid.col_bcast(prow, &[])
        };

        for (ri, &bi) in my_rows.iter().enumerate() {
            let l_blk = &l_panel[ri * nb * nb..(ri + 1) * nb * nb];
            for (ci, &bj) in my_cols.iter().enumerate() {
                let u_blk = &u_panel[ci * nb * nb..(ci + 1) * nb * nb];
                let mut c_blk = a.get_block(bi, bj);
                gemm_sub(&mut c_blk, l_blk, u_blk, nb);
                a.set_block(bi, bj, &c_blk);
            }
        }
    }
    piv
}

/// Swap two full global rows across the grid. Each process column swaps its
/// local segments; if the rows live on different process rows, the two
/// exchange segments point-to-point along the process column.
fn swap_global_rows(grid: &GridContext, a: &mut DistMatrix<f64>, r1: usize, r2: usize) {
    let d = a.desc;
    let (p1, l1) = g2l(r1, d.mb, d.nprow);
    let (p2, l2) = g2l(r2, d.mb, d.nprow);
    let myrow = grid.myrow();
    const TAG_SWAP: u32 = 900;
    if p1 == p2 {
        if myrow == p1 {
            for lj in 0..a.local_cols() {
                let t = a.get_local(l1, lj);
                a.set_local(l1, lj, a.get_local(l2, lj));
                a.set_local(l2, lj, t);
            }
        }
    } else if myrow == p1 || myrow == p2 {
        let (my_l, peer) = if myrow == p1 { (l1, p2) } else { (l2, p1) };
        let mine: Vec<f64> = (0..a.local_cols()).map(|lj| a.get_local(my_l, lj)).collect();
        let theirs = grid.col_comm().sendrecv(peer, peer, TAG_SWAP, &mine);
        for (lj, v) in theirs.into_iter().enumerate() {
            a.set_local(my_l, lj, v);
        }
    }
}

/// Solve `L · Y = A` for Y (L unit lower triangular) in place.
fn trsm_left_unit_lower(a: &mut [f64], l: &[f64], nb: usize) {
    for c in 0..nb {
        for r in 0..nb {
            let mut s = a[r * nb + c];
            for t in 0..r {
                s -= l[r * nb + t] * a[t * nb + c];
            }
            a[r * nb + c] = s;
        }
    }
}

/// `C -= A · B` for `nb × nb` blocks.
fn gemm_sub(c: &mut [f64], a: &[f64], b: &[f64], nb: usize) {
    for i in 0..nb {
        for k in 0..nb {
            let aik = a[i * nb + k];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c[i * nb..(i + 1) * nb];
            let brow = &b[k * nb..(k + 1) * nb];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv -= aik * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    /// A general (NOT diagonally dominant) deterministic test matrix that
    /// genuinely needs pivoting.
    pub(super) fn hard_elem(n: usize, seed: u64) -> impl Fn(usize, usize) -> f64 + Clone {
        move |i, j| {
            let h = (i as u64 + 1)
                .wrapping_mul(0x9E3779B97F4A7C15 ^ seed)
                .wrapping_add((j as u64 + 1).wrapping_mul(0xC2B2AE3D27D4EB4F));
            let h = (h ^ (h >> 29)).wrapping_mul(0xBF58476D1CE4E5B9);
            let v = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            // Make early diagonal entries tiny so pivoting is exercised.
            if i == j && i < n / 2 {
                v * 1e-8
            } else {
                v
            }
        }
    }

    /// Verify `L · U == P · A` by reconstruction.
    fn check_pivoted(n: usize, nb: usize, pr: usize, pc: usize, seed: u64) {
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "plu", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let f = hard_elem(n, seed);
                let mut a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), f.clone());
                let piv = lu_factorize_pivoted(&grid, &mut a);
                assert_eq!(piv.len(), n);
                let full = a.gather(&grid);
                if comm.rank() == 0 {
                    let lu = full.unwrap();
                    // Apply the recorded interchanges to the original.
                    let mut pa: Vec<f64> = (0..n * n).map(|x| f(x / n, x % n)).collect();
                    for (g, &r) in piv.iter().enumerate() {
                        if r != g {
                            for j in 0..n {
                                pa.swap(g * n + j, r * n + j);
                            }
                        }
                    }
                    // Reconstruct L*U and compare with P*A.
                    let mut scale = 0.0f64;
                    for v in &pa {
                        scale = scale.max(v.abs());
                    }
                    for i in 0..n {
                        for j in 0..n {
                            let mut s = 0.0;
                            for t in 0..=i.min(j) {
                                let l = if t == i { 1.0 } else { lu[i * n + t] };
                                s += l * lu[t * n + j];
                            }
                            let err = (s - pa[i * n + j]).abs();
                            assert!(
                                err < 1e-9 * scale.max(1.0) * n as f64,
                                "reconstruction off at ({i},{j}): {s} vs {}",
                                pa[i * n + j]
                            );
                        }
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn pivoted_single_process() {
        check_pivoted(12, 3, 1, 1, 1);
    }

    #[test]
    fn pivoted_square_grid() {
        check_pivoted(16, 4, 2, 2, 2);
    }

    #[test]
    fn pivoted_rectangular_grid() {
        check_pivoted(24, 4, 2, 3, 3);
    }

    #[test]
    fn pivoted_row_grid() {
        check_pivoted(18, 3, 3, 1, 4);
    }

    #[test]
    fn pivoted_many_blocks() {
        check_pivoted(32, 4, 2, 2, 5);
    }

    #[test]
    fn pivots_are_actually_used() {
        // With tiny leading diagonal entries, at least one interchange must
        // pick a row other than the diagonal.
        let n = 16;
        Universe::new(4, 1, NetModel::ideal())
            .launch(4, None, "plu-used", move |comm| {
                let grid = GridContext::new(&comm, 2, 2);
                let desc = Descriptor::square(n, 4, 2, 2);
                let f = hard_elem(n, 9);
                let mut a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), f);
                let piv = lu_factorize_pivoted(&grid, &mut a);
                assert!(
                    piv.iter().enumerate().any(|(g, &r)| r != g),
                    "expected nontrivial interchanges: {piv:?}"
                );
            })
            .join_ok();
    }

    #[test]
    fn agrees_with_unpivoted_on_dominant_matrices() {
        // On a strictly diagonally dominant matrix, pivoting never fires
        // only when the diagonal dominates its column below; our generator
        // guarantees dominance, so interchanges may still occur in theory —
        // instead check both factorizations solve the same system: verify
        // L·U == P·A for the pivoted and L·U == A for the unpivoted.
        let n = 16;
        Universe::new(4, 1, NetModel::ideal())
            .launch(4, None, "plu-dom", move |comm| {
                let grid = GridContext::new(&comm, 2, 2);
                let desc = Descriptor::square(n, 4, 2, 2);
                let f = crate::dominant_elem(n);
                let mut a1 = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), &f);
                let mut a2 = a1.clone();
                let piv = lu_factorize_pivoted(&grid, &mut a1);
                crate::lu::lu_factorize(&grid, &mut a2);
                // Column dominance of dominant_elem: diagonal is n, off
                // entries ≤ 0.5 — the diagonal always wins the pivot search,
                // so both factorizations must be identical.
                assert!(piv.iter().enumerate().all(|(g, &r)| r == g), "{piv:?}");
                for (x, y) in a1.local_data().iter().zip(a2.local_data()) {
                    assert!((x - y).abs() < 1e-12, "{x} vs {y}");
                }
            })
            .join_ok();
    }
}

/// Solve `A·x = b` from a pivoted factorization (`lu` holding `L\U` of
/// `P·A`, `piv` the interchanges): apply `P` to `b`, forward-substitute
/// through `L`, back-substitute through `U`. `b` is replicated on every
/// process; the returned `x` is replicated too. Collective over `grid`.
///
/// The substitutions walk rows in order (they are inherently sequential);
/// each row's dot product is computed in parallel across the owning process
/// row and combined with a small reduction — adequate for validation and
/// moderate sizes.
pub fn lu_solve(
    grid: &GridContext,
    lu: &DistMatrix<f64>,
    piv: &[usize],
    b: &[f64],
) -> Vec<f64> {
    let d = lu.desc;
    let n = d.m;
    assert_eq!(b.len(), n, "right-hand side length mismatch");
    assert_eq!(piv.len(), n, "pivot vector length mismatch");
    let (myrow, mycol) = (grid.myrow(), grid.mycol());

    // Apply the interchanges to b.
    let mut y: Vec<f64> = b.to_vec();
    for (g, &r) in piv.iter().enumerate() {
        if r != g {
            y.swap(g, r);
        }
    }

    // Forward substitution: y_i -= sum_{j<i} L_ij * y_j (L unit lower).
    for i in 0..n {
        let (own_r, li) = g2l(i, d.nb, d.nprow);
        let partial = if myrow == own_r {
            // Sum over my owned columns j < i.
            let mut s = 0.0;
            for lj in 0..lu.local_cols() {
                let gj = d.local_to_global_col(lj, mycol);
                if gj < i {
                    s += lu.get_local(li, lj) * y[gj];
                }
            }
            s
        } else {
            0.0
        };
        // Reduce the partials across the owning process row, then share the
        // updated y_i with everyone via the full communicator.
        let total = if myrow == own_r {
            grid.row_comm().allreduce(ReduceOp::Sum, &[partial])[0]
        } else {
            0.0
        };
        let root = grid.pnum(own_r, 0);
        let yi = grid.comm().bcast(
            root,
            &if grid.comm().rank() == root {
                vec![y[i] - total]
            } else {
                vec![]
            },
        )[0];
        y[i] = yi;
    }

    // Back substitution: x_i = (y_i - sum_{j>i} U_ij x_j) / U_ii.
    let mut x = y;
    for i in (0..n).rev() {
        let (own_r, li) = g2l(i, d.nb, d.nprow);
        let partial = if myrow == own_r {
            let mut s = 0.0;
            for lj in 0..lu.local_cols() {
                let gj = d.local_to_global_col(lj, mycol);
                if gj > i {
                    s += lu.get_local(li, lj) * x[gj];
                }
            }
            s
        } else {
            0.0
        };
        let (diag_owner_col, ldj) = g2l(i, d.nb, d.npcol);
        let (total, uii) = if myrow == own_r {
            let total = grid.row_comm().allreduce(ReduceOp::Sum, &[partial])[0];
            let uii = if mycol == diag_owner_col {
                lu.get_local(li, ldj)
            } else {
                0.0
            };
            let uii = grid.row_comm().allreduce(ReduceOp::Sum, &[uii])[0];
            (total, uii)
        } else {
            (0.0, 0.0)
        };
        let root = grid.pnum(own_r, 0);
        let xi = grid.comm().bcast(
            root,
            &if grid.comm().rank() == root {
                vec![(x[i] - total) / uii]
            } else {
                vec![]
            },
        )[0];
        x[i] = xi;
    }
    x
}

#[cfg(test)]
mod solve_tests {
    use super::*;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    fn check_solve(n: usize, nb: usize, pr: usize, pc: usize, seed: u64) {
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "lusolve", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let f = super::tests::hard_elem(n, seed);
                let mut a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), f.clone());
                // Known solution: x_true = [1, -1, 2, -2, ...].
                let x_true: Vec<f64> = (0..n)
                    .map(|i| if i % 2 == 0 { (i / 2 + 1) as f64 } else { -((i / 2 + 1) as f64) })
                    .collect();
                let b: Vec<f64> = (0..n)
                    .map(|i| (0..n).map(|j| f(i, j) * x_true[j]).sum())
                    .collect();
                let piv = lu_factorize_pivoted(&grid, &mut a);
                let x = lu_solve(&grid, &a, &piv, &b);
                let scale: f64 = x_true.iter().map(|v| v.abs()).fold(1.0, f64::max);
                for (xi, ti) in x.iter().zip(&x_true) {
                    assert!(
                        (xi - ti).abs() < 1e-6 * scale * n as f64,
                        "{xi} vs {ti}"
                    );
                }
            })
            .join_ok();
    }

    #[test]
    fn solve_single_process() {
        check_solve(12, 3, 1, 1, 11);
    }

    #[test]
    fn solve_square_grid() {
        check_solve(16, 4, 2, 2, 12);
    }

    #[test]
    fn solve_rectangular_grid() {
        check_solve(24, 4, 2, 3, 13);
    }

    #[test]
    fn solve_column_grid() {
        check_solve(12, 3, 1, 3, 14);
    }
}
