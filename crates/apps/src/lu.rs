//! Distributed blocked LU factorization (the paper's `PDGETRF` workload).
//!
//! Right-looking LU over a 2-D block-cyclic matrix with square `nb × nb`
//! blocks: at step `k` the owner of diagonal block `(k,k)` factors it and
//! broadcasts it along its process row and column; the owning process
//! column forms the `L` panel, the owning row forms the `U` panel; panels
//! are broadcast row-/column-wise and every process updates its trailing
//! blocks. Pivoting is omitted (the workloads use strictly diagonally
//! dominant matrices, for which pivot-free LU is stable) — the
//! communication structure, which is what ReSHAPE's experiments measure,
//! matches the pivoted ScaLAPACK routine.

use reshape_blockcyclic::DistMatrix;
use reshape_grid::GridContext;

/// Factor the diagonal block in place (no pivoting).
fn factor_diag(a: &mut [f64], nb: usize) {
    for k in 0..nb {
        let pivot = a[k * nb + k];
        for i in (k + 1)..nb {
            a[i * nb + k] /= pivot;
            let l = a[i * nb + k];
            for j in (k + 1)..nb {
                a[i * nb + j] -= l * a[k * nb + j];
            }
        }
    }
}

/// Solve `X · U = A` for X (U upper triangular, non-unit) in place.
fn trsm_right_upper(a: &mut [f64], u: &[f64], nb: usize) {
    for r in 0..nb {
        for c in 0..nb {
            let mut s = a[r * nb + c];
            for t in 0..c {
                s -= a[r * nb + t] * u[t * nb + c];
            }
            a[r * nb + c] = s / u[c * nb + c];
        }
    }
}

/// Solve `L · Y = A` for Y (L unit lower triangular) in place.
fn trsm_left_unit_lower(a: &mut [f64], l: &[f64], nb: usize) {
    for c in 0..nb {
        for r in 0..nb {
            let mut s = a[r * nb + c];
            for t in 0..r {
                s -= l[r * nb + t] * a[t * nb + c];
            }
            a[r * nb + c] = s;
        }
    }
}

/// `C -= A · B` for `nb × nb` blocks.
fn gemm_sub(c: &mut [f64], a: &[f64], b: &[f64], nb: usize) {
    for i in 0..nb {
        for k in 0..nb {
            let aik = a[i * nb + k];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c[i * nb..(i + 1) * nb];
            let brow = &b[k * nb..(k + 1) * nb];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv -= aik * bv;
            }
        }
    }
}

/// My local trailing block-row indices `> k`.
fn my_block_rows(n_blocks: usize, k: usize, nprow: usize, myrow: usize) -> Vec<usize> {
    ((k + 1)..n_blocks).filter(|bi| bi % nprow == myrow).collect()
}

fn my_block_cols(n_blocks: usize, k: usize, npcol: usize, mycol: usize) -> Vec<usize> {
    ((k + 1)..n_blocks).filter(|bj| bj % npcol == mycol).collect()
}

/// In-place distributed LU factorization: on return `a` holds `L\U` (unit
/// lower diagonal). Collective over `grid`.
///
/// # Panics
///
/// Requires a square matrix with square blocks and `n % nb == 0` (the
/// paper's experiments enforce exactly this divisibility, Table 2).
pub fn lu_factorize(grid: &GridContext, a: &mut DistMatrix<f64>) {
    let d = a.desc;
    assert_eq!(d.m, d.n, "LU needs a square matrix");
    assert_eq!(d.mb, d.nb, "LU needs square blocks");
    assert_eq!(d.m % d.nb, 0, "block size must divide the matrix");
    assert_eq!((d.nprow, d.npcol), (grid.nprow(), grid.npcol()));
    let nb = d.nb;
    let n_blocks = d.m / nb;
    let (myrow, mycol) = (grid.myrow(), grid.mycol());

    for k in 0..n_blocks {
        let prow = k % d.nprow;
        let pcol = k % d.npcol;
        let i_own_diag = (myrow, mycol) == (prow, pcol);

        // Step 1: factor the diagonal block and share it with the owning
        // process column (for the L panel) and row (for the U panel).
        let diag = if i_own_diag {
            let mut blk = a.get_block(k, k);
            factor_diag(&mut blk, nb);
            a.set_block(k, k, &blk);
            blk
        } else {
            Vec::new()
        };
        let diag_for_col = if mycol == pcol {
            grid.col_bcast(prow, &diag)
        } else {
            Vec::new()
        };
        let diag_for_row = if myrow == prow {
            grid.row_bcast(pcol, &diag)
        } else {
            Vec::new()
        };

        // Step 2: L panel on the owning process column.
        let l_rows = my_block_rows(n_blocks, k, d.nprow, myrow);
        if mycol == pcol {
            for &bi in &l_rows {
                let mut blk = a.get_block(bi, k);
                trsm_right_upper(&mut blk, &diag_for_col, nb);
                a.set_block(bi, k, &blk);
            }
        }

        // Step 3: U panel on the owning process row.
        let u_cols = my_block_cols(n_blocks, k, d.npcol, mycol);
        if myrow == prow {
            for &bj in &u_cols {
                let mut blk = a.get_block(k, bj);
                trsm_left_unit_lower(&mut blk, &diag_for_row, nb);
                a.set_block(k, bj, &blk);
            }
        }

        // Step 4: broadcast the panels. Each process receives exactly the
        // L blocks for its local block rows (they live in its process row)
        // and the U blocks for its local block columns.
        let l_panel: Vec<f64> = if mycol == pcol {
            let mut buf = Vec::with_capacity(l_rows.len() * nb * nb);
            for &bi in &l_rows {
                buf.extend_from_slice(&a.get_block(bi, k));
            }
            grid.row_bcast(pcol, &buf)
        } else {
            grid.row_bcast(pcol, &[])
        };
        let u_panel: Vec<f64> = if myrow == prow {
            let mut buf = Vec::with_capacity(u_cols.len() * nb * nb);
            for &bj in &u_cols {
                buf.extend_from_slice(&a.get_block(k, bj));
            }
            grid.col_bcast(prow, &buf)
        } else {
            grid.col_bcast(prow, &[])
        };
        assert_eq!(l_panel.len(), l_rows.len() * nb * nb, "L panel size");
        assert_eq!(u_panel.len(), u_cols.len() * nb * nb, "U panel size");

        // Step 5: trailing update of every local block (bi > k, bj > k).
        for (ri, &bi) in l_rows.iter().enumerate() {
            let l_blk = &l_panel[ri * nb * nb..(ri + 1) * nb * nb];
            for (ci, &bj) in u_cols.iter().enumerate() {
                let u_blk = &u_panel[ci * nb * nb..(ci + 1) * nb * nb];
                let mut c_blk = a.get_block(bi, bj);
                gemm_sub(&mut c_blk, l_blk, u_blk, nb);
                a.set_block(bi, bj, &c_blk);
            }
        }
    }
}

/// Modeled floating-point work of one LU factorization (for virtual-time
/// accounting): `2/3 · n³`.
pub fn lu_flops(n: usize) -> f64 {
    2.0 / 3.0 * (n as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    fn check_lu(n: usize, nb: usize, pr: usize, pc: usize, seed: u64) {
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "lu", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let f = seq::test_matrix_at(n, seed);
                let mut a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), f);
                lu_factorize(&grid, &mut a);
                let full = a.gather(&grid);
                if comm.rank() == 0 {
                    let full = full.unwrap();
                    let mut reference = seq::test_matrix(n, seed);
                    seq::lu_nopivot(&mut reference, n);
                    for i in 0..n {
                        for j in 0..n {
                            let (x, y) = (full[i * n + j], reference[i * n + j]);
                            assert!(
                                (x - y).abs() < 1e-8 * (1.0 + y.abs()),
                                "LU mismatch at ({i},{j}): {x} vs {y}"
                            );
                        }
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn matches_sequential_on_single_process() {
        check_lu(16, 4, 1, 1, 1);
    }

    #[test]
    fn matches_sequential_on_row_grid() {
        check_lu(24, 4, 1, 3, 2);
    }

    #[test]
    fn matches_sequential_on_square_grid() {
        check_lu(24, 4, 2, 2, 3);
    }

    #[test]
    fn matches_sequential_on_rectangular_grid() {
        check_lu(36, 6, 2, 3, 4);
    }

    #[test]
    fn matches_sequential_with_many_blocks_per_proc() {
        check_lu(48, 4, 2, 2, 5);
    }

    #[test]
    fn single_block_matrix() {
        check_lu(8, 8, 1, 1, 6);
    }

    #[test]
    fn flops_formula() {
        assert!((lu_flops(100) - 2.0 / 3.0 * 1e6).abs() < 1.0);
    }
}
