//! SUMMA distributed matrix multiplication (the paper's `PDGEMM` workload).
//!
//! `C = A · B` over 2-D block-cyclic matrices: at step `k` the process
//! column owning block column `k` of `A` broadcasts its panel along process
//! rows, the process row owning block row `k` of `B` broadcasts its panel
//! along process columns, and every process rank-1-updates its local `C`
//! blocks.

use reshape_blockcyclic::DistMatrix;
use reshape_grid::GridContext;

/// `C += A · B` distributed; all three matrices square `n × n` with the
/// same square blocking on the same grid. Collective.
pub fn summa(grid: &GridContext, a: &DistMatrix<f64>, b: &DistMatrix<f64>, c: &mut DistMatrix<f64>) {
    let d = a.desc;
    assert_eq!(d.m, d.n, "SUMMA here is square-only");
    assert_eq!(d.mb, d.nb, "square blocks required");
    assert_eq!(d.m % d.nb, 0, "block size must divide the matrix");
    assert_eq!(b.desc, d, "B must match A's distribution");
    assert_eq!(c.desc, d, "C must match A's distribution");
    let nb = d.nb;
    let n_blocks = d.m / nb;
    let (myrow, mycol) = (grid.myrow(), grid.mycol());

    let my_rows: Vec<usize> = (0..n_blocks).filter(|bi| bi % d.nprow == myrow).collect();
    let my_cols: Vec<usize> = (0..n_blocks).filter(|bj| bj % d.npcol == mycol).collect();

    for k in 0..n_blocks {
        let pcol = k % d.npcol; // owner column of A[:,k]
        let prow = k % d.nprow; // owner row of B[k,:]
        // Panel of A: blocks A[bi, k] for my block rows.
        let a_panel: Vec<f64> = if mycol == pcol {
            let mut buf = Vec::with_capacity(my_rows.len() * nb * nb);
            for &bi in &my_rows {
                buf.extend_from_slice(&a.get_block(bi, k));
            }
            grid.row_bcast(pcol, &buf)
        } else {
            grid.row_bcast(pcol, &[])
        };
        // Panel of B: blocks B[k, bj] for my block columns.
        let b_panel: Vec<f64> = if myrow == prow {
            let mut buf = Vec::with_capacity(my_cols.len() * nb * nb);
            for &bj in &my_cols {
                buf.extend_from_slice(&b.get_block(k, bj));
            }
            grid.col_bcast(prow, &buf)
        } else {
            grid.col_bcast(prow, &[])
        };
        assert_eq!(a_panel.len(), my_rows.len() * nb * nb);
        assert_eq!(b_panel.len(), my_cols.len() * nb * nb);

        // Local update: C[bi,bj] += A[bi,k] * B[k,bj].
        for (ri, &bi) in my_rows.iter().enumerate() {
            let a_blk = &a_panel[ri * nb * nb..(ri + 1) * nb * nb];
            let l0 = (bi / d.nprow) * nb;
            for (ci, &bj) in my_cols.iter().enumerate() {
                let b_blk = &b_panel[ci * nb * nb..(ci + 1) * nb * nb];
                let c0 = (bj / d.npcol) * nb;
                for i in 0..nb {
                    for t in 0..nb {
                        let av = a_blk[i * nb + t];
                        if av == 0.0 {
                            continue;
                        }
                        for j in 0..nb {
                            let cur = c.get_local(l0 + i, c0 + j);
                            c.set_local(l0 + i, c0 + j, cur + av * b_blk[t * nb + j]);
                        }
                    }
                }
            }
        }
    }
}

/// Modeled floating-point work of one `n × n` multiply: `2 · n³`.
pub fn mm_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    fn check_mm(n: usize, nb: usize, pr: usize, pc: usize) {
        let p = pr * pc;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "mm", move |comm| {
                let grid = GridContext::new(&comm, pr, pc);
                let desc = Descriptor::square(n, nb, pr, pc);
                let fa = move |i: usize, j: usize| ((i * 13 + j * 7) % 10) as f64 - 4.5;
                let fb = move |i: usize, j: usize| ((i * 5 + j * 11) % 9) as f64 - 4.0;
                let a = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), fa);
                let b = DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), fb);
                let mut c = DistMatrix::new(desc, grid.myrow(), grid.mycol());
                summa(&grid, &a, &b, &mut c);
                let full = c.gather(&grid);
                if comm.rank() == 0 {
                    let full = full.unwrap();
                    let fa_full: Vec<f64> = (0..n * n).map(|x| fa(x / n, x % n)).collect();
                    let fb_full: Vec<f64> = (0..n * n).map(|x| fb(x / n, x % n)).collect();
                    let reference = seq::matmul(&fa_full, &fb_full, n);
                    for i in 0..n * n {
                        assert!(
                            (full[i] - reference[i]).abs() < 1e-9,
                            "C[{i}]: {} vs {}",
                            full[i],
                            reference[i]
                        );
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn single_process() {
        check_mm(12, 4, 1, 1);
    }

    #[test]
    fn square_grid() {
        check_mm(16, 4, 2, 2);
    }

    #[test]
    fn rectangular_grid() {
        check_mm(24, 4, 2, 3);
    }

    #[test]
    fn column_grid() {
        check_mm(16, 4, 1, 4);
    }

    #[test]
    fn many_blocks_per_process() {
        check_mm(32, 4, 2, 2);
    }
}
