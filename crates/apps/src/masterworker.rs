//! Synthetic master–worker application (paper Table 1: "Each iteration
//! requires 20000 fixed-time work units").
//!
//! Rank 0 is the master; workers request chunks of work units, "compute"
//! them (advancing the virtual clock by `unit_time` per unit), and come
//! back for more until the pool is drained. There is no global data to
//! redistribute — which is exactly why checkpointing and ReSHAPE
//! redistribution tie for this workload in the paper's Figure 3(b).

use reshape_mpisim::Comm;

const TAG_REQUEST: u32 = 101;
const TAG_GRANT: u32 = 102;

/// Run one iteration of the master–worker workload: distribute
/// `work_units` units, each costing `unit_time` virtual seconds, in chunks
/// of `chunk` units. Collective over `comm`. Returns the number of units
/// this rank processed.
pub fn master_worker_round(comm: &Comm, work_units: usize, unit_time: f64, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk must be positive");
    if comm.size() == 1 {
        comm.advance(work_units as f64 * unit_time);
        return work_units;
    }
    if comm.rank() == 0 {
        // Master: hand out chunks on request, then send a zero-size grant
        // to retire each worker.
        let mut remaining = work_units;
        let mut active = comm.size() - 1;
        while active > 0 {
            let (src, _, _req) = comm.recv_match::<u64>(None, Some(TAG_REQUEST));
            let grant = remaining.min(chunk);
            remaining -= grant;
            comm.send(src, TAG_GRANT, &[grant as u64]);
            if grant == 0 {
                active -= 1;
            }
        }
        0
    } else {
        let mut done = 0usize;
        loop {
            comm.send(0, TAG_REQUEST, &[comm.rank() as u64]);
            let grant = comm.recv::<u64>(0, TAG_GRANT)[0] as usize;
            if grant == 0 {
                break;
            }
            comm.advance(grant as f64 * unit_time);
            done += grant;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_mpisim::{NetModel, ReduceOp, Universe};

    #[test]
    fn all_work_units_are_processed_exactly_once() {
        let p = 5;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "mw", move |comm| {
                let mine = master_worker_round(&comm, 1000, 0.001, 32);
                let total = comm.allreduce(ReduceOp::Sum, &[mine as u64]);
                assert_eq!(total, vec![1000]);
            })
            .join_ok();
    }

    #[test]
    fn single_process_does_everything() {
        Universe::new(1, 1, NetModel::ideal())
            .launch(1, None, "mw1", |comm| {
                let done = master_worker_round(&comm, 500, 0.01, 16);
                assert_eq!(done, 500);
                assert!((comm.vtime() - 5.0).abs() < 1e-9);
            })
            .join_ok();
    }

    #[test]
    fn more_workers_finish_sooner_in_virtual_time() {
        let t_with = |p: usize| {
            let uni = Universe::new(p, 1, NetModel::gigabit_ethernet());
            let t = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let t2 = std::sync::Arc::clone(&t);
            uni.launch(p, None, "mw-scale", move |comm| {
                master_worker_round(&comm, 2000, 0.001, 50);
                let end = comm.allreduce(ReduceOp::Max, &[comm.vtime()])[0];
                if comm.rank() == 0 {
                    t2.store(end.to_bits(), std::sync::atomic::Ordering::Relaxed);
                }
            })
            .join_ok();
            f64::from_bits(t.load(std::sync::atomic::Ordering::Relaxed))
        };
        // The master serves requests in real arrival order (wildcard recv),
        // so the chunk schedule — and with it the virtual makespan — varies
        // with OS thread scheduling. A single measurement can catch a badly
        // imbalanced schedule; take the best of a few trials, which is the
        // makespan of a near-fair schedule.
        let best = |p: usize| (0..5).map(|_| t_with(p)).fold(f64::INFINITY, f64::min);
        let slow = best(3); // 2 workers
        let fast = best(9); // 8 workers
        assert!(
            fast < slow * 0.5,
            "8 workers ({fast}s) should be well under half of 2 workers ({slow}s)"
        );
    }

    #[test]
    fn zero_work_retires_workers_immediately() {
        Universe::new(3, 1, NetModel::ideal())
            .launch(3, None, "mw0", |comm| {
                let done = master_worker_round(&comm, 0, 1.0, 10);
                assert_eq!(done, 0);
            })
            .join_ok();
    }
}
