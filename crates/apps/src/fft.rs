//! Distributed 2-D FFT (paper Table 1: "A 2D fast fourier transform
//! application used for image transformation").
//!
//! The `n × n` complex image (separate re/im planes) is distributed in
//! block-cyclic column panels over a `1 × P` grid, so each column is fully
//! local. A 2-D transform is: FFT every column, transpose (the
//! all-to-all-personalized exchange that dominates communication), FFT
//! every column again, and transpose back so the result has the natural
//! orientation.

use reshape_blockcyclic::{g2l, l2g, numroc, DistMatrix};
use reshape_grid::GridContext;

use crate::seq::fft_inplace;

/// Transpose a square block-cyclic matrix on a `1 × P` grid, returning a
/// matrix with the same descriptor. Collective.
pub fn transpose(grid: &GridContext, m: &DistMatrix<f64>) -> DistMatrix<f64> {
    let d = m.desc;
    assert_eq!(d.m, d.n, "transpose here is square-only");
    assert_eq!(d.nprow, 1, "transpose expects a 1-D column distribution");
    let n = d.n;
    let p = d.npcol;
    let comm = grid.comm();
    let me = grid.mycol();
    let lcols = m.local_cols();

    // Element (i, gj) moves to (gj, i): its new owner is the owner of
    // column i. Send buckets ordered by (i ascending, local j ascending) —
    // the receiver reconstructs the order from the block-cyclic maps.
    let mut buckets: Vec<Vec<f64>> = (0..p).map(|_| Vec::new()).collect();
    for i in 0..n {
        let (dst, _) = g2l(i, d.nb, p);
        let bucket = &mut buckets[dst];
        for lj in 0..lcols {
            bucket.push(m.get_local(i, lj));
        }
    }
    let received = comm.alltoallv(&buckets);

    let mut out = DistMatrix::<f64>::new(d, 0, me);
    let my_cols = numroc(n, d.nb, me, p);
    for (src, data) in received.iter().enumerate() {
        // src sent, for each i I own (ascending), its columns gj (ascending
        // local order): value lands at out[gj, local(i)].
        let src_cols = numroc(n, d.nb, src, p);
        let mut idx = 0;
        for li_of_i in 0..my_cols {
            let i = l2g(li_of_i, d.nb, me, p);
            debug_assert_eq!(g2l(i, d.nb, p).0, me);
            for src_lj in 0..src_cols {
                let gj = l2g(src_lj, d.nb, src, p);
                out.set_local(gj, li_of_i, data[idx]);
                idx += 1;
            }
        }
        assert_eq!(idx, data.len(), "transpose payload from {src} mismatched");
    }
    out
}

/// In-place-ish distributed 2-D FFT of the complex plane `(re, im)`.
/// `inverse` selects the inverse transform (with 1/n² normalization
/// applied through the two 1-D passes). Collective.
pub fn fft2d(
    grid: &GridContext,
    re: &mut DistMatrix<f64>,
    im: &mut DistMatrix<f64>,
    inverse: bool,
) {
    let d = re.desc;
    assert_eq!(im.desc, d, "re/im planes must share a distribution");
    assert_eq!(d.nprow, 1, "fft2d expects a 1-D column distribution");
    assert!(d.m.is_power_of_two(), "image side must be a power of two");

    let n = d.m;
    let mut col_re = vec![0.0; n];
    let mut col_im = vec![0.0; n];
    let mut pass = |re: &mut DistMatrix<f64>, im: &mut DistMatrix<f64>| {
        let lcols = re.local_cols();
        for lj in 0..lcols {
            for i in 0..n {
                col_re[i] = re.get_local(i, lj);
                col_im[i] = im.get_local(i, lj);
            }
            fft_inplace(&mut col_re, &mut col_im, inverse);
            for i in 0..n {
                re.set_local(i, lj, col_re[i]);
                im.set_local(i, lj, col_im[i]);
            }
        }
    };

    // Columns, transpose, columns (now transforming the original rows),
    // transpose back.
    pass(re, im);
    *re = transpose(grid, re);
    *im = transpose(grid, im);
    pass(re, im);
    *re = transpose(grid, re);
    *im = transpose(grid, im);
}

/// Modeled floating-point work of one 2-D FFT: `10 · n² · log2(n)`
/// (5 flops per butterfly, two 1-D passes over n² points).
pub fn fft_flops(n: usize) -> f64 {
    10.0 * (n as f64).powi(2) * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    fn image(n: usize) -> (Vec<f64>, Vec<f64>) {
        let re: Vec<f64> = (0..n * n).map(|x| ((x * 37 + 11) % 101) as f64 / 50.0 - 1.0).collect();
        let im: Vec<f64> = (0..n * n).map(|x| ((x * 17 + 3) % 89) as f64 / 44.0 - 1.0).collect();
        (re, im)
    }

    /// Sequential reference 2-D DFT (columns then rows, matching fft2d's
    /// final orientation).
    fn dft2d(re: &[f64], im: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut tr = vec![0.0; n * n];
        let mut ti = vec![0.0; n * n];
        // Column transforms.
        for j in 0..n {
            let col_r: Vec<f64> = (0..n).map(|i| re[i * n + j]).collect();
            let col_i: Vec<f64> = (0..n).map(|i| im[i * n + j]).collect();
            let (fr, fi) = seq::dft(&col_r, &col_i);
            for i in 0..n {
                tr[i * n + j] = fr[i];
                ti[i * n + j] = fi[i];
            }
        }
        // Row transforms.
        let mut or_ = vec![0.0; n * n];
        let mut oi = vec![0.0; n * n];
        for i in 0..n {
            let (fr, fi) = seq::dft(&tr[i * n..(i + 1) * n], &ti[i * n..(i + 1) * n]);
            or_[i * n..(i + 1) * n].copy_from_slice(&fr);
            oi[i * n..(i + 1) * n].copy_from_slice(&fi);
        }
        (or_, oi)
    }

    fn check_fft(n: usize, nb: usize, p: usize) {
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "fft", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let d = Descriptor::new(n, n, n, nb, 1, p);
                let (re_full, im_full) = image(n);
                let rf = re_full.clone();
                let if_ = im_full.clone();
                let mut re =
                    DistMatrix::from_fn(d, 0, grid.mycol(), move |i, j| rf[i * n + j]);
                let mut im =
                    DistMatrix::from_fn(d, 0, grid.mycol(), move |i, j| if_[i * n + j]);
                fft2d(&grid, &mut re, &mut im, false);
                let gr = re.gather(&grid);
                let gi = im.gather(&grid);
                if comm.rank() == 0 {
                    let (gr, gi) = (gr.unwrap(), gi.unwrap());
                    let (er, ei) = dft2d(&re_full, &im_full, n);
                    for k in 0..n * n {
                        assert!(
                            (gr[k] - er[k]).abs() < 1e-6 && (gi[k] - ei[k]).abs() < 1e-6,
                            "fft2d mismatch at {k}: ({}, {}) vs ({}, {})",
                            gr[k],
                            gi[k],
                            er[k],
                            ei[k]
                        );
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn transpose_round_trip_and_correctness() {
        let n = 16;
        let p = 4;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "transpose", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let d = Descriptor::new(n, n, n, 2, 1, p);
                let m = DistMatrix::from_fn(d, 0, grid.mycol(), |i, j| (i * n + j) as f64);
                let t = transpose(&grid, &m);
                // Check t[i,j] == m[j,i] on owned elements.
                for lj in 0..t.local_cols() {
                    let gj = d.local_to_global_col(lj, grid.mycol());
                    for i in 0..n {
                        assert_eq!(t.get_local(i, lj), (gj * n + i) as f64);
                    }
                }
                let back = transpose(&grid, &t);
                assert_eq!(back.local_data(), m.local_data());
            })
            .join_ok();
    }

    #[test]
    fn matches_reference_single_process() {
        check_fft(8, 2, 1);
    }

    #[test]
    fn matches_reference_two_processes() {
        check_fft(16, 2, 2);
    }

    #[test]
    fn matches_reference_four_processes() {
        check_fft(16, 4, 4);
    }

    #[test]
    fn forward_inverse_round_trip() {
        let n = 32;
        let p = 4;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "fft-rt", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let d = Descriptor::new(n, n, n, 4, 1, p);
                let mut re = DistMatrix::from_fn(d, 0, grid.mycol(), |i, j| {
                    ((i * 7 + j * 3) % 23) as f64
                });
                let mut im = DistMatrix::<f64>::new(d, 0, grid.mycol());
                let re0 = re.local_data().to_vec();
                fft2d(&grid, &mut re, &mut im, false);
                fft2d(&grid, &mut re, &mut im, true);
                for (a, b) in re.local_data().iter().zip(&re0) {
                    assert!((a - b).abs() < 1e-8, "{a} vs {b}");
                }
                for v in im.local_data() {
                    assert!(v.abs() < 1e-8);
                }
            })
            .join_ok();
    }
}
