//! Dense Jacobi iterative solver (paper Table 1: "An iterative jacobi
//! solver (dense-matrix) application").
//!
//! The system matrix `A` is distributed in block-cyclic *column panels*
//! over a `1 × P` grid; the iterate `x` and right-hand side `b` are `1 × n`
//! row vectors with the same column distribution, so each process updates
//! exactly the entries of `x` whose columns it owns. One sweep computes the
//! local partial mat-vec, allreduces the full product, and updates the
//! owned entries — the allreduce of an `n`-vector is the workload's
//! characteristic communication.

use reshape_blockcyclic::DistMatrix;
use reshape_grid::GridContext;
use reshape_mpisim::ReduceOp;

/// One Jacobi sweep: `x ← D⁻¹ (b − R x)`. Collective over the grid's
/// communicator. `a` is `n × n`, `x` and `b` are `1 × n`, all on a `1 × P`
/// grid with identical column blocking.
pub fn jacobi_sweep(
    grid: &GridContext,
    a: &DistMatrix<f64>,
    x: &mut DistMatrix<f64>,
    b: &DistMatrix<f64>,
) {
    let d = a.desc;
    let n = d.m;
    assert_eq!(d.nprow, 1, "Jacobi uses a 1-D column distribution");
    assert_eq!((x.desc.m, x.desc.n), (1, n), "x must be 1 x n");
    assert_eq!((b.desc.m, b.desc.n), (1, n), "b must be 1 x n");
    assert_eq!(x.desc.nb, d.nb, "x blocking must match A's columns");
    assert_eq!(b.desc.nb, d.nb, "b blocking must match A's columns");

    // Partial product: y += A[:, j] * x[j] over owned columns j.
    let mut y = vec![0.0; n];
    let lcols = a.local_cols();
    for lj in 0..lcols {
        let xj = x.get_local(0, lj);
        if xj == 0.0 {
            continue;
        }
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += a.get_local(i, lj) * xj;
        }
    }
    let y = grid.comm().allreduce(ReduceOp::Sum, &y);

    // Update owned entries: x[j] = (b[j] - (y[j] - A[j,j] x[j])) / A[j,j].
    for lj in 0..lcols {
        let gj = d.local_to_global_col(lj, grid.mycol());
        let ajj = a.get_local(gj, lj);
        let xj = x.get_local(0, lj);
        let new = (b.get_local(0, lj) - (y[gj] - ajj * xj)) / ajj;
        x.set_local(0, lj, new);
    }
}

/// Modeled floating-point work of one sweep: `2 · n²`.
pub fn jacobi_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use reshape_blockcyclic::Descriptor;
    use reshape_mpisim::{NetModel, Universe};

    fn check_jacobi(n: usize, nb: usize, p: usize, sweeps: usize) {
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "jacobi", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let fa = seq::test_matrix_at(n, 11);
                let a_desc = Descriptor::new(n, n, n, nb, 1, p);
                let v_desc = Descriptor::new(1, n, 1, nb, 1, p);
                let a = DistMatrix::from_fn(a_desc, 0, grid.mycol(), &fa);
                let fb = |_: usize, j: usize| (j % 7) as f64 - 3.0;
                let b = DistMatrix::from_fn(v_desc, 0, grid.mycol(), fb);
                let mut x = DistMatrix::new(v_desc, 0, grid.mycol());
                for _ in 0..sweeps {
                    jacobi_sweep(&grid, &a, &mut x, &b);
                }
                let xs = x.gather(&grid);
                if comm.rank() == 0 {
                    let xs = xs.unwrap();
                    // Sequential reference.
                    let a_full = seq::test_matrix(n, 11);
                    let b_full: Vec<f64> = (0..n).map(|j| fb(0, j)).collect();
                    let mut xr = vec![0.0; n];
                    for _ in 0..sweeps {
                        xr = seq::jacobi_sweep(&a_full, &b_full, &xr, n);
                    }
                    for j in 0..n {
                        assert!(
                            (xs[j] - xr[j]).abs() < 1e-9,
                            "x[{j}]: {} vs {}",
                            xs[j],
                            xr[j]
                        );
                    }
                }
            })
            .join_ok();
    }

    #[test]
    fn one_process_matches_sequential() {
        check_jacobi(16, 4, 1, 5);
    }

    #[test]
    fn four_processes_match_sequential() {
        check_jacobi(24, 4, 4, 8);
    }

    #[test]
    fn uneven_blocks() {
        check_jacobi(20, 3, 3, 6);
    }

    #[test]
    fn converges_distributed() {
        let n = 24;
        let p = 4;
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "jconv", move |comm| {
                let grid = GridContext::new(&comm, 1, p);
                let fa = seq::test_matrix_at(n, 5);
                let a_desc = Descriptor::new(n, n, n, 2, 1, p);
                let v_desc = Descriptor::new(1, n, 1, 2, 1, p);
                let a = DistMatrix::from_fn(a_desc, 0, grid.mycol(), &fa);
                // b = A * ones, so x should converge to ones.
                let a_full = seq::test_matrix(n, 5);
                let fb = move |_: usize, j: usize| (0..n).map(|t| a_full[j * n + t]).sum::<f64>();
                let b = DistMatrix::from_fn(v_desc, 0, grid.mycol(), fb);
                let mut x = DistMatrix::new(v_desc, 0, grid.mycol());
                for _ in 0..100 {
                    jacobi_sweep(&grid, &a, &mut x, &b);
                }
                for lj in 0..x.local_cols() {
                    assert!((x.get_local(0, lj) - 1.0).abs() < 1e-8);
                }
            })
            .join_ok();
    }
}
