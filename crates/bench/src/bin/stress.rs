//! Statistical evaluation over random job mixes.
//!
//! The paper evaluates on two hand-built workloads; this harness runs the
//! scheduler over many *random* mixes (LU/MM/Jacobi/FFT/master–worker with
//! staggered arrivals) and reports the distribution of the
//! dynamic-vs-static improvement, plus the policy variants — checking that
//! ReSHAPE's gains are not an artifact of one lucky workload.
//!
//! ```text
//! cargo run -p reshape-bench --bin stress -- [n_workloads] [--json out.json]
//! ```

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{random_workload, ClusterSim, MachineParams, SimResult};
use reshape_core::RemapPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct SeedResult {
    seed: u64,
    static_mean_tat: f64,
    paper_mean_tat: f64,
    greedy_mean_tat: f64,
    never_shrink_mean_tat: f64,
    paper_improvement: f64,
    static_util: f64,
    paper_util: f64,
}

fn mean_tat(r: &SimResult) -> f64 {
    r.jobs.iter().map(|j| j.turnaround).sum::<f64>() / r.jobs.len() as f64
}

fn main() {
    reshape_bench::telemetry_from_args();
    let n: u64 = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let machine = MachineParams::system_x();
    let mut results = Vec::new();
    for seed in 0..n {
        let w = random_workload(seed, 8, 36);
        let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);
        let paper = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        let greedy = ClusterSim::new(w.total_procs, machine)
            .with_remap_policy(RemapPolicy::GreedyExpand)
            .run(&w.jobs);
        let never = ClusterSim::new(w.total_procs, machine)
            .with_remap_policy(RemapPolicy::NeverShrink)
            .run(&w.jobs);
        let (sm, pm) = (mean_tat(&stat), mean_tat(&paper));
        results.push(SeedResult {
            seed,
            static_mean_tat: sm,
            paper_mean_tat: pm,
            greedy_mean_tat: mean_tat(&greedy),
            never_shrink_mean_tat: mean_tat(&never),
            paper_improvement: (sm - pm) / sm,
            static_util: stat.utilization,
            paper_util: paper.utilization,
        });
    }

    let mean = |f: &dyn Fn(&SeedResult) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    };
    let min_max = |f: &dyn Fn(&SeedResult) -> f64| {
        let vals: Vec<f64> = results.iter().map(f).collect();
        (
            vals.iter().copied().fold(f64::INFINITY, f64::min),
            vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };

    println!("Random-workload stress: {n} seeds x 8 jobs on 36 processors\n");
    let mut table = Table::new(vec!["metric", "mean", "min", "max"]);
    type Metric = Box<dyn Fn(&SeedResult) -> f64>;
    let metrics: Vec<(&str, Metric)> = vec![
        ("static mean TAT (s)", Box::new(|r: &SeedResult| r.static_mean_tat)),
        ("paper mean TAT (s)", Box::new(|r: &SeedResult| r.paper_mean_tat)),
        ("greedy mean TAT (s)", Box::new(|r: &SeedResult| r.greedy_mean_tat)),
        ("never-shrink mean TAT (s)", Box::new(|r: &SeedResult| r.never_shrink_mean_tat)),
        ("paper improvement", Box::new(|r: &SeedResult| r.paper_improvement)),
        ("static utilization", Box::new(|r: &SeedResult| r.static_util)),
        ("paper utilization", Box::new(|r: &SeedResult| r.paper_util)),
    ];
    for (name, f) in &metrics {
        let (lo, hi) = min_max(&**f);
        table.row(vec![
            name.to_string(),
            format!("{:.3}", mean(&**f)),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
        ]);
    }
    table.print();
    let wins = results
        .iter()
        .filter(|r| r.paper_mean_tat <= r.static_mean_tat)
        .count();
    println!(
        "\nReSHAPE (paper policy) beats or ties static scheduling on {wins}/{} random mixes",
        results.len()
    );

    reshape_bench::record_metric(
        "stress",
        "paper_mean_tat_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        mean(&|r: &SeedResult| r.paper_mean_tat),
    );
    reshape_bench::record_metric(
        "stress",
        "paper_mean_improvement",
        "ratio",
        reshape_perfbase::MetricKind::Virtual,
        mean(&|r: &SeedResult| r.paper_improvement),
    );

    if let Some(path) = json_arg() {
        write_json(&path, &results);
    }
    reshape_bench::flush_telemetry();
}
