//! `trace_check` — validate an exported Chrome/Perfetto trace file.
//!
//! ```text
//! cargo run -p reshape-bench --bin trace_check -- trace.json
//! ```
//!
//! Parses the trace-event JSON produced by `RESHAPE_TRACE` exports and
//! checks the causal invariants the rest of the tooling relies on: every
//! event is well-formed (`ph:"X"`, microsecond timestamps, non-negative
//! durations), span ids are unique, every non-zero parent edge points at a
//! span in the same file, and no span ends before it starts. Exits 0 and
//! prints a summary when the trace is sound; prints every violation and
//! exits 1 otherwise — CI runs this against a fixed-seed `simulate` export.

use reshape_telemetry::trace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_check <trace.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let spans = match trace::parse_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: {path}: malformed trace: {e}");
            std::process::exit(1);
        }
    };
    if spans.is_empty() {
        eprintln!("trace_check: {path}: no spans (was RESHAPE_TRACE set during the run?)");
        std::process::exit(1);
    }
    let problems = trace::validate(&spans);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("trace_check: {path}: {p}");
        }
        std::process::exit(1);
    }
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace).collect();
    let parented = spans.iter().filter(|s| s.parent != 0).count();
    let t_max = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    println!(
        "trace_check: {path}: OK — {} spans, {} traces, {parented} parent edges, t_max {t_max:.1}s",
        spans.len(),
        traces.len()
    );
    let paths = reshape_telemetry::critpath::analyze(&spans);
    if !paths.is_empty() {
        print!("{}", reshape_telemetry::critpath::render_table(&paths));
    }
}
