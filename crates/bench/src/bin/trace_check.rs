//! `trace_check` — validate an exported Chrome/Perfetto trace file.
//!
//! ```text
//! cargo run -p reshape-bench --bin trace_check -- trace.json
//! ```
//!
//! Parses the trace-event JSON produced by `RESHAPE_TRACE` exports and
//! checks the causal invariants the rest of the tooling relies on: every
//! event is well-formed (`ph:"X"`, microsecond timestamps, non-negative
//! durations), span ids are unique, every non-zero parent edge points at a
//! span in the same file, and no span ends before it starts. When the
//! export's `<trace>.critpath.json` sidecar is present it is validated
//! too: it must parse as the critical-path schema, every bucket must be
//! non-negative, the buckets must sum to the job's makespan, and the rows
//! must agree with an attribution recomputed from the trace itself.
//!
//! Federation exports (lease / shard-control traces, recognized by the
//! trace-id bits of `reshape_telemetry::trace`) get three more checks:
//! every parent chain closes transitively at a root span even where it
//! crosses traces (lease → shard control and back); every lease span
//! recorded on a shard's track nests inside that shard's control-root
//! lifetime; and every fence span is parented to an epoch-bump span it
//! never precedes. Exits 0 and prints a summary when everything is sound;
//! prints every violation and exits 1 otherwise — CI runs this against a
//! fixed-seed `simulate` export and against the `fedtop` federation
//! trace-smoke scenario.

use reshape_telemetry::trace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_check <trace.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let spans = match trace::parse_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: {path}: malformed trace: {e}");
            std::process::exit(1);
        }
    };
    if spans.is_empty() {
        eprintln!("trace_check: {path}: no spans (was RESHAPE_TRACE set during the run?)");
        std::process::exit(1);
    }
    let problems = trace::validate(&spans);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("trace_check: {path}: {p}");
        }
        std::process::exit(1);
    }
    let problems = check_federation(&spans);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("trace_check: {path}: {p}");
        }
        std::process::exit(1);
    }
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace).collect();
    let parented = spans.iter().filter(|s| s.parent != 0).count();
    let t_max = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    println!(
        "trace_check: {path}: OK — {} spans, {} traces, {parented} parent edges, t_max {t_max:.1}s",
        spans.len(),
        traces.len()
    );
    let leases = traces.iter().filter(|&&t| trace::is_lease_trace(t)).count();
    let shards = traces.iter().filter(|&&t| trace::is_shard_trace(t)).count();
    if leases + shards > 0 {
        let fences = spans.iter().filter(|s| s.cat == "fence").count();
        println!(
            "trace_check: {path}: federation OK — {leases} lease traces, {shards} shard \
             control traces, {fences} fences (parent closure, shard nesting, fence-after-bump)"
        );
    }
    let paths = reshape_telemetry::critpath::analyze(&spans);
    if !paths.is_empty() {
        print!("{}", reshape_telemetry::critpath::render_table(&paths));
    }

    let sidecar = format!("{path}.critpath.json");
    if std::path::Path::new(&sidecar).exists() {
        let problems = check_sidecar(&sidecar, &paths);
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("trace_check: {sidecar}: {p}");
            }
            std::process::exit(1);
        }
        println!("trace_check: {sidecar}: OK — {} jobs, buckets sum to makespan", paths.len());
    }
}

/// Federation-specific causal checks on lease / shard-control traces.
/// No-op (empty) for exports with no federation spans.
fn check_federation(spans: &[trace::SpanRecord]) -> Vec<String> {
    use std::collections::BTreeMap;

    let mut problems = Vec::new();
    let by_id: BTreeMap<u64, &trace::SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let fed = |s: &trace::SpanRecord| {
        trace::is_lease_trace(s.trace) || trace::is_shard_trace(s.trace)
    };
    if !spans.iter().any(|s| fed(s)) {
        return problems;
    }

    // 1. Cross-shard parent-edge closure: every federation span's parent
    //    chain terminates at a root (parent 0), even where the edges
    //    cross traces (lease → shard control and back).
    for s in spans.iter().filter(|s| fed(s)) {
        let mut cur = s;
        let mut hops = 0usize;
        while cur.parent != 0 {
            match by_id.get(&cur.parent) {
                Some(p) => cur = p,
                None => {
                    problems.push(format!(
                        "span {} ({}) parent chain breaks at missing span {}",
                        s.id, s.name, cur.parent
                    ));
                    break;
                }
            }
            hops += 1;
            if hops > spans.len() {
                problems.push(format!("span {} ({}) parent chain cycles", s.id, s.name));
                break;
            }
        }
    }

    // 2. Lease spans nest inside the lifetime of the shard they were
    //    recorded on (the span's track names the acting shard; the shard
    //    control trace's root span is that shard's lifetime).
    let mut shard_roots: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for s in spans.iter().filter(|s| trace::is_shard_trace(s.trace) && s.parent == 0) {
        shard_roots.insert(format!("shard {}", trace::shard_of(s.trace)), (s.start, s.end));
    }
    for s in spans.iter().filter(|s| trace::is_lease_trace(s.trace)) {
        let Some(&(lo, hi)) = shard_roots.get(&s.track) else {
            continue; // track is not a shard lifetime (e.g. the lease root)
        };
        if s.start < lo || s.end > hi {
            problems.push(format!(
                "lease span {} ({}) [{:.6}, {:.6}] outside its {} lifetime [{lo:.6}, {hi:.6}]",
                s.id, s.name, s.start, s.end, s.track
            ));
        }
    }

    // 3. A fence span is always caused by — and never precedes — the
    //    epoch bump that fenced it.
    for s in spans.iter().filter(|s| s.cat == "fence") {
        let Some(bump) = by_id.get(&s.parent) else {
            problems.push(format!(
                "fence span {} ({}) has no epoch-bump parent (parent {})",
                s.id, s.name, s.parent
            ));
            continue;
        };
        if bump.cat != "epoch" {
            problems.push(format!(
                "fence span {} ({}) parented to {:?} (cat {:?}), not an epoch bump",
                s.id, s.name, bump.name, bump.cat
            ));
        }
        if s.start < bump.start {
            problems.push(format!(
                "fence span {} ({}) at {:.6} precedes its epoch bump at {:.6}",
                s.id, s.name, s.start, bump.start
            ));
        }
    }
    problems
}

/// Validate the `.critpath.json` sidecar against the schema and against the
/// attribution recomputed from the trace. Returns all violations found.
fn check_sidecar(
    sidecar: &str,
    recomputed: &[reshape_telemetry::critpath::JobCritPath],
) -> Vec<String> {
    use reshape_telemetry::critpath::JobCritPath;

    let text = match std::fs::read_to_string(sidecar) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read sidecar: {e}")],
    };
    let rows: Vec<JobCritPath> = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => return vec![format!("not a critical-path sidecar (schema violation): {e}")],
    };
    let mut problems = Vec::new();
    for r in &rows {
        let buckets = [
            ("makespan", r.makespan),
            ("compute", r.compute),
            ("queue_wait", r.queue_wait),
            ("spawn", r.spawn),
            ("redistribution", r.redistribution),
            ("rollback_replay", r.rollback_replay),
            ("other", r.other),
        ];
        for (name, v) in buckets {
            if !v.is_finite() || v < 0.0 {
                problems.push(format!("trace {} ({}): {name} = {v} is not a duration", r.trace, r.name));
            }
        }
        // The buckets partition the root interval, so their sum must equal
        // the makespan (float-tolerant, scaled to the magnitude involved).
        let tol = 1e-6 * (1.0 + r.makespan.abs());
        if (r.total() - r.makespan).abs() > tol {
            problems.push(format!(
                "trace {} ({}): buckets sum to {} but makespan is {}",
                r.trace,
                r.name,
                r.total(),
                r.makespan
            ));
        }
    }
    if rows.len() != recomputed.len() {
        problems.push(format!(
            "sidecar has {} jobs but the trace yields {}",
            rows.len(),
            recomputed.len()
        ));
    }
    for (got, want) in rows.iter().zip(recomputed) {
        if got.trace != want.trace {
            problems.push(format!("job order mismatch: sidecar trace {} vs trace {}", got.trace, want.trace));
            continue;
        }
        let tol = 1e-6 * (1.0 + want.makespan.abs());
        if (got.total() - want.total()).abs() > tol || (got.makespan - want.makespan).abs() > tol {
            problems.push(format!(
                "trace {} ({}): sidecar attribution diverges from the trace (makespan {} vs {})",
                got.trace, got.name, got.makespan, want.makespan
            ));
        }
    }
    problems
}
