//! Recovery-time comparison: buddy-based shrink-to-survivors vs
//! checkpoint/restart, across problem sizes.
//!
//! A survivable job pays `replicate` (ring-copy every panel to its buddy)
//! at each resize point, and on a node death pays `restore` (reassemble
//! the dead rank's panel from its buddy directly onto the shrunken
//! survivor grid). The checkpoint/restart baseline pays the full
//! DRMS-style round trip instead: funnel every panel to rank 0, write and
//! read the global matrix on one disk, scatter onto the survivors. Both
//! mechanisms then replay the iterations since their last save point, so
//! with equal intervals the replay cost cancels and the data paths above
//! are the whole difference.
//!
//! All times are virtual seconds on the simulator's calibrated
//! Gigabit-Ethernet model (max over the participating ranks), measured on
//! a 4-process 2×2 grid losing one rank and recovering onto the remaining
//! 1×3 grid.
//!
//! ```text
//! cargo run -p reshape-bench --bin recovery -- [max_n] [--json out.json]
//! ```
//!
//! `max_n` caps the problem-size sweep (default 4096); CI's smoke run
//! passes 512 to keep the debug-build data motion small. `--telemetry`
//! prints the shared journal on exit, and `RESHAPE_TRACE=path.json`
//! exports the replicate/checkpoint/restore phases as a Perfetto trace
//! (one trace per problem size, virtual-clock timestamps).

use std::sync::{Arc, Mutex};

use reshape_bench::{json_arg, write_json, Table};
use reshape_telemetry::trace;
use reshape_blockcyclic::{recover_matrix, BuddyStore, Descriptor, DistMatrix};
use reshape_mpisim::{NetModel, Universe};
use reshape_redist::{checkpoint_cost, checkpoint_redistribute, CheckpointParams};
use serde::Serialize;

#[derive(Serialize)]
struct SizeResult {
    n: usize,
    volume_mb: f64,
    /// Per-resize-point cost of keeping the buddy copies fresh.
    buddy_replicate_s: f64,
    /// Reassembling the dead rank's data onto the survivor grid.
    buddy_restore_s: f64,
    /// replicate + restore: everything the buddy path spends per failure.
    buddy_total_s: f64,
    /// Measured checkpoint/restart round trip (funnel + disk + scatter).
    ckpt_roundtrip_s: f64,
    /// The analytic model the paper's Figure 3(b) uses, as a cross-check.
    ckpt_analytic_s: f64,
    speedup: f64,
}

/// One size point: 4 ranks hold an `n × n` matrix on a 2×2 grid, rank 3
/// "dies", and both recovery paths rebuild the data on the 1×3 survivors.
fn measure(n: usize) -> SizeResult {
    const NB: usize = 64;
    let uni = Universe::new(4, 1, NetModel::gigabit_ethernet());
    // Per-rank (replicate, checkpoint, restore) virtual-time deltas.
    let deltas: Arc<Mutex<Vec<(f64, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&deltas);
    uni.launch(4, None, "recovery-bench", move |comm| {
        let me = comm.rank();
        let s = Descriptor::square(n, NB, 2, 2);
        let d = Descriptor::new(n, n, NB, NB, 1, 3);
        let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * n + j) as f64);

        // With RESHAPE_TRACE set, each phase becomes a span under a per-size
        // root (trace id = N), stamped with the simulator's virtual clock.
        let root = if me == 0 {
            trace::begin(n as u64, 0, format!("recovery n={n}"), "job", "recovery", comm.vtime())
        } else {
            0
        };

        let t0 = comm.vtime();
        let store = BuddyStore::replicate(&comm, std::slice::from_ref(&src));
        let t_rep = comm.vtime() - t0;
        if me == 0 {
            trace::complete(n as u64, root, "buddy_replicate", "redist", "recovery", t0, t0 + t_rep);
        }

        // Checkpoint/restart round trip onto the survivors. All four ranks
        // take part in the funnel (the checkpoint is written while the
        // soon-to-die rank is still alive); only ranks 0..3 receive.
        let t0 = comm.vtime();
        let out = checkpoint_redistribute(
            &comm,
            s,
            d,
            Some(&src),
            &CheckpointParams::default(),
            None,
        );
        let t_ck = comm.vtime() - t0;
        assert_eq!(out.is_some(), me < 3, "1x3 grid covers ranks 0..3");
        if me == 0 {
            trace::complete(n as u64, root, "ckpt_roundtrip", "redist", "recovery", t0, t0 + t_ck);
        }

        // Buddy restore: rank 3 is dead from here on and sits out. The
        // survivors rebuild its panel from rank 0's ward copy, landing
        // directly in the shrunken layout — no disk, no rank-0 funnel.
        let mut t_rec = 0.0;
        if me != 3 {
            let survivors = [0usize, 1, 2];
            let mine = store.own_snapshot(0);
            let t0 = comm.vtime();
            let out = recover_matrix(&comm, &survivors, &mine, &store, 0, d)
                .expect("rank 3's buddy (rank 0) is alive");
            t_rec = comm.vtime() - t0;
            assert!(out.is_some(), "every survivor owns part of the 1x3 layout");
            if me == 0 {
                trace::complete(n as u64, root, "buddy_restore", "recovery", "recovery", t0, t0 + t_rec);
            }
        }
        if me == 0 {
            trace::end(root, comm.vtime());
        }
        sink.lock().expect("delta sink").push((t_rep, t_ck, t_rec));
    })
    .join_ok();

    let deltas = deltas.lock().expect("delta sink");
    let max = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
        deltas.iter().map(f).fold(0.0, f64::max)
    };
    let buddy_replicate_s = max(&|d| d.0);
    let ckpt_roundtrip_s = max(&|d| d.1);
    let buddy_restore_s = max(&|d| d.2);
    let buddy_total_s = buddy_replicate_s + buddy_restore_s;
    SizeResult {
        n,
        volume_mb: (n * n * 8) as f64 / 1e6,
        buddy_replicate_s,
        buddy_restore_s,
        buddy_total_s,
        ckpt_roundtrip_s,
        ckpt_analytic_s: checkpoint_cost(
            n,
            n,
            8,
            4,
            3,
            &NetModel::gigabit_ethernet(),
            &CheckpointParams::default(),
        ),
        speedup: ckpt_roundtrip_s / buddy_total_s,
    }
}

fn main() {
    reshape_bench::telemetry_from_args();
    let max_n: usize = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(4096);
    let results: Vec<SizeResult> = [512usize, 1024, 2048, 4096]
        .iter()
        .filter(|&&n| n <= max_n)
        .map(|&n| measure(n))
        .collect();

    println!("Node-loss recovery: buddy shrink-to-survivors vs checkpoint/restart");
    println!("(4 ranks, one death, recover onto 3; virtual seconds, gigabit model)\n");
    let mut table = Table::new(vec![
        "N",
        "volume (MB)",
        "buddy replicate (s)",
        "buddy restore (s)",
        "buddy total (s)",
        "ckpt round trip (s)",
        "ckpt analytic (s)",
        "speedup",
    ]);
    for r in &results {
        table.row(vec![
            r.n.to_string(),
            format!("{:.1}", r.volume_mb),
            format!("{:.4}", r.buddy_replicate_s),
            format!("{:.4}", r.buddy_restore_s),
            format!("{:.4}", r.buddy_total_s),
            format!("{:.4}", r.ckpt_roundtrip_s),
            format!("{:.4}", r.ckpt_analytic_s),
            format!("{:.1}x", r.speedup),
        ]);
    }
    table.print();
    println!(
        "\nBoth paths replay the iterations since their last save point; with\n\
         equal save intervals that cost cancels, so the table is the whole\n\
         difference. The buddy path also never touches rank 0's disk, so the\n\
         gap widens with cluster size (the funnel serializes at one NIC)."
    );

    for r in &results {
        reshape_bench::record_metric(
            "recovery",
            &format!("n{}_buddy_total_virtual_s", r.n),
            "s",
            reshape_perfbase::MetricKind::Virtual,
            r.buddy_total_s,
        );
        reshape_bench::record_metric(
            "recovery",
            &format!("n{}_ckpt_roundtrip_virtual_s", r.n),
            "s",
            reshape_perfbase::MetricKind::Virtual,
            r.ckpt_roundtrip_s,
        );
    }

    if let Some(path) = json_arg() {
        write_json(&path, &results);
    }
    // With RESHAPE_TRACE set, export the per-phase spans (replicate /
    // checkpoint round trip / restore, one trace per problem size).
    if trace::enabled() {
        trace::write_trace_files(&trace::drain_spans());
    }
    reshape_bench::flush_telemetry();
}
