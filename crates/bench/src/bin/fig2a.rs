//! Regenerates **Figure 2(a)**: LU factorization iteration time vs
//! processor count for seven matrix sizes, from the calibrated System X
//! performance model. The paper's qualitative findings to look for:
//! larger problems keep benefiting from processors, small problems flatten
//! early, and LU-24000 improves ~19% going from 16 to 20 processors.

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{AppModel, MachineParams};
use reshape_core::{ProcessorConfig, TopologyPref};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    n: usize,
    points: Vec<(usize, f64)>, // (procs, seconds)
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let cases: Vec<(usize, (usize, usize), usize)> = vec![
        (8000, (1, 2), 40),
        (12000, (1, 2), 48),
        (14000, (2, 2), 49),
        (16000, (2, 2), 40),
        (20000, (2, 2), 40),
        (21000, (2, 2), 49),
        (24000, (2, 4), 48),
    ];

    let mut series = Vec::new();
    for &(n, start, cap) in &cases {
        let pref = TopologyPref::Grid { problem_size: n };
        let chain = pref.chain_from(ProcessorConfig::new(start.0, start.1), cap);
        let model = AppModel::Lu { n };
        let points: Vec<(usize, f64)> = chain
            .iter()
            .map(|&cfg| (cfg.procs(), model.iter_time(cfg, &machine)))
            .collect();
        series.push(Series { n, points });
    }

    println!("Figure 2(a): Running time for LU factorization (seconds per iteration)");
    let mut table = Table::new(vec!["procs \\ N", "8000", "12000", "14000", "16000", "20000", "21000", "24000"]);
    // Collect the union of processor counts, ascending.
    let mut all_procs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(p, _)| p))
        .collect();
    all_procs.sort_unstable();
    all_procs.dedup();
    for p in all_procs {
        let mut row = vec![p.to_string()];
        for s in &series {
            match s.points.iter().find(|&&(pp, _)| pp == p) {
                Some(&(_, t)) => row.push(format!("{t:.1}")),
                None => row.push("-".to_string()),
            }
        }
        table.row(row);
    }
    table.print();

    // Headline check from the paper.
    let lu24 = AppModel::Lu { n: 24000 };
    let t16 = lu24.iter_time(ProcessorConfig::new(4, 4), &machine);
    let t20 = lu24.iter_time(ProcessorConfig::new(4, 5), &machine);
    println!(
        "\nLU-24000, 16 -> 20 processors: {:.1}s -> {:.1}s ({:.1}% improvement; paper reports 19.1%)",
        t16,
        t20,
        (t16 - t20) / t16 * 100.0
    );
    reshape_bench::record_metric(
        "fig2a",
        "lu24000_iter_16p_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        t16,
    );
    reshape_bench::record_metric(
        "fig2a",
        "lu24000_iter_20p_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        t20,
    );

    if let Some(path) = json_arg() {
        write_json(&path, &series);
    }
    reshape_bench::flush_telemetry();
}
