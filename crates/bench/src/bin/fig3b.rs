//! Regenerates **Figure 3(b)**: per-application comparison of
//!
//! * static scheduling (initial allocation for the whole run),
//! * dynamic resizing with **file-based checkpoint** redistribution, and
//! * dynamic resizing with **ReSHAPE** message-based redistribution,
//!
//! for LU(12000), MM(14000), Master-worker, Jacobi(8000) and FFT(8192),
//! 10 iterations each, run alone on the cluster. Bars decompose into
//! iteration (compute) time and redistribution time.
//!
//! Paper's findings to look for: checkpointing redistribution is several
//! times more expensive than ReSHAPE's (8.3× for LU, 4.5× MM, 14.5×
//! Jacobi, 7.9× FFT), and the master–worker case shows no difference (no
//! data to move).

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{fig3b_jobs, ClusterSim, MachineParams, RedistMode, SimJob};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    app: String,
    iteration_time: f64,
    redist_time: f64,
    total: f64,
}

#[derive(Serialize)]
struct AppRow {
    app: String,
    static_: Bar,
    checkpoint: Bar,
    reshape: Bar,
}

fn run_one(job: &SimJob, mode: Option<RedistMode>, procs: usize) -> Bar {
    let machine = MachineParams::system_x();
    let mut job = job.clone();
    let sim = match mode {
        None => {
            job.spec = job.spec.clone().static_job();
            ClusterSim::new(procs, machine)
        }
        Some(m) => ClusterSim::new(procs, machine).with_redist_mode(m),
    };
    let result = sim.run(std::slice::from_ref(&job));
    let j = &result.jobs[0];
    Bar {
        app: j.name.clone(),
        iteration_time: j.compute_total,
        redist_time: j.redist_total,
        total: j.compute_total + j.redist_total,
    }
}

fn main() {
    reshape_bench::telemetry_from_args();
    // 36 processors available, as in the workload experiments.
    let procs = 36;
    let mut rows = Vec::new();
    println!("Figure 3(b): Performance with static scheduling, dynamic + checkpointing,");
    println!("and dynamic + ReSHAPE redistribution (seconds; 10 iterations per app)\n");
    let mut table = Table::new(vec![
        "Application",
        "Static total",
        "Ckpt iter",
        "Ckpt redist",
        "Ckpt total",
        "ReSHAPE iter",
        "ReSHAPE redist",
        "ReSHAPE total",
        "redist ratio",
    ]);
    for job in fig3b_jobs() {
        let stat = run_one(&job, None, procs);
        let ckpt = run_one(&job, Some(RedistMode::Checkpoint), procs);
        let resh = run_one(&job, Some(RedistMode::Reshape), procs);
        let ratio = if resh.redist_time > 0.0 {
            format!("{:.1}x", ckpt.redist_time / resh.redist_time)
        } else {
            "-".to_string()
        };
        table.row(vec![
            job.spec.name.clone(),
            format!("{:.0}", stat.total),
            format!("{:.0}", ckpt.iteration_time),
            format!("{:.1}", ckpt.redist_time),
            format!("{:.0}", ckpt.total),
            format!("{:.0}", resh.iteration_time),
            format!("{:.1}", resh.redist_time),
            format!("{:.0}", resh.total),
            ratio,
        ]);
        let slug = job.spec.name.to_lowercase().replace([' ', '-'], "_");
        reshape_bench::record_metric(
            "fig3b",
            &format!("{slug}_reshape_total_virtual_s"),
            "s",
            reshape_perfbase::MetricKind::Virtual,
            resh.total,
        );
        reshape_bench::record_metric(
            "fig3b",
            &format!("{slug}_reshape_redist_virtual_s"),
            "s",
            reshape_perfbase::MetricKind::Virtual,
            resh.redist_time,
        );
        rows.push(AppRow {
            app: job.spec.name.clone(),
            static_: stat,
            checkpoint: ckpt,
            reshape: resh,
        });
    }
    table.print();
    println!(
        "\nPaper's checkpoint/ReSHAPE redistribution cost ratios: LU 8.3x, MM 4.5x,\n\
         Jacobi 14.5x, 2D FFT 7.9x; Master-worker identical (no data)."
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows);
    }
    reshape_bench::flush_telemetry();
}
