//! Ablation: the Remap Scheduler's two key design decisions, and the queue
//! discipline, evaluated on the paper's workload 1.
//!
//! * **Paper policy** — probe while improving, revert failed expansions,
//!   shrink for queued jobs.
//! * **GreedyExpand** — grow whenever anything is idle (past sweet spots,
//!   despite waiting jobs).
//! * **NeverShrink** — paper expansion, but processors are never returned.
//! * **FCFS vs Backfill** — initial-allocation discipline.
//!
//! Expected: the paper policy dominates on mean turnaround and utilization;
//! NeverShrink starves late arrivals; GreedyExpand wastes processors past
//! sweet spots and blocks the queue.

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{workload1, ClusterSim, MachineParams, SimResult};
use reshape_core::{QueuePolicy, RemapPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_turnaround: f64,
    max_turnaround: f64,
    utilization: f64,
    makespan: f64,
}

fn summarize(variant: &str, r: &SimResult) -> Row {
    let mean = r.jobs.iter().map(|j| j.turnaround).sum::<f64>() / r.jobs.len() as f64;
    let max = r.jobs.iter().map(|j| j.turnaround).fold(0.0, f64::max);
    Row {
        variant: variant.to_string(),
        mean_turnaround: mean,
        max_turnaround: max,
        utilization: r.utilization,
        makespan: r.makespan,
    }
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let w = workload1();

    let variants: Vec<(String, SimResult)> = vec![
        (
            "static".into(),
            ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs),
        ),
        (
            "paper (FCFS)".into(),
            ClusterSim::new(w.total_procs, machine).run(&w.jobs),
        ),
        (
            "paper (backfill)".into(),
            ClusterSim::new(w.total_procs, machine)
                .with_policy(QueuePolicy::Backfill)
                .run(&w.jobs),
        ),
        (
            "greedy-expand".into(),
            ClusterSim::new(w.total_procs, machine)
                .with_remap_policy(RemapPolicy::GreedyExpand)
                .run(&w.jobs),
        ),
        (
            "never-shrink".into(),
            ClusterSim::new(w.total_procs, machine)
                .with_remap_policy(RemapPolicy::NeverShrink)
                .run(&w.jobs),
        ),
        (
            "cost-benefit".into(),
            ClusterSim::new(w.total_procs, machine)
                .with_remap_policy(RemapPolicy::CostBenefit)
                .run(&w.jobs),
        ),
    ];

    println!("Policy ablation on workload 1 ({} processors)\n", w.total_procs);
    let mut table = Table::new(vec![
        "variant",
        "mean turnaround (s)",
        "max turnaround (s)",
        "utilization",
        "makespan (s)",
    ]);
    let mut rows = Vec::new();
    for (name, r) in &variants {
        let row = summarize(name, r);
        table.row(vec![
            row.variant.clone(),
            format!("{:.0}", row.mean_turnaround),
            format!("{:.0}", row.max_turnaround),
            format!("{:.1}%", row.utilization * 100.0),
            format!("{:.0}", row.makespan),
        ]);
        rows.push(row);
    }
    table.print();

    // Per-job detail for the interesting failure mode: who starves under
    // never-shrink?
    println!("\nPer-job turnaround (s):");
    let mut detail = Table::new(vec!["job", "static", "paper", "greedy", "never-shrink"]);
    for i in 0..w.jobs.len() {
        detail.row(vec![
            w.jobs[i].spec.name.clone(),
            format!("{:.0}", variants[0].1.jobs[i].turnaround),
            format!("{:.0}", variants[1].1.jobs[i].turnaround),
            format!("{:.0}", variants[3].1.jobs[i].turnaround),
            format!("{:.0}", variants[4].1.jobs[i].turnaround),
        ]);
    }
    detail.print();

    if let Some(path) = json_arg() {
        write_json(&path, &rows);
    }
    reshape_bench::flush_telemetry();
}
