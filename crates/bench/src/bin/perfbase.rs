//! `perfbase` — record and gate the repo's performance trajectory.
//!
//! ```text
//! perfbase run     [--quick] [--areas a,b] [--out DIR] [--seed N] [--samples N] [--warmup N]
//! perfbase compare [--quick] [--areas a,b] [--baseline DIR] [--seed N]
//! perfbase list
//! ```
//!
//! `run` executes the seeded benchmark suites and writes one
//! `BENCH_<area>.json` per area (default: the repo root, where the
//! baselines are committed). `compare` re-runs the suites, diffs against
//! the committed baselines with per-metric noise thresholds, prints the
//! regression table, and exits 1 when a significant slowdown survives the
//! MAD overlap check — the CI soft gate.

use std::path::PathBuf;
use std::process::ExitCode;

use reshape_perfbase::{
    compare, render_table, run_area, BenchReport, CompareReport, SuiteOpts, AREAS,
};

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfbase <run|compare|list> [--quick] [--areas a,b,...] [--out DIR] \
         [--baseline DIR] [--seed N] [--samples N] [--warmup N]\n\
         areas: {}",
        AREAS.join(", ")
    );
    ExitCode::from(2)
}

fn selected_areas(args: &[String]) -> Result<Vec<&'static str>, String> {
    let Some(spec) = opt_value(args, "--areas") else {
        return Ok(AREAS.to_vec());
    };
    let mut out = Vec::new();
    for want in spec.split(',').filter(|s| !s.is_empty()) {
        match AREAS.iter().find(|a| **a == want) {
            Some(a) => out.push(*a),
            None => return Err(format!("unknown area `{want}` (known: {})", AREAS.join(", "))),
        }
    }
    if out.is_empty() {
        return Err("--areas selected nothing".into());
    }
    Ok(out)
}

fn suite_opts(args: &[String]) -> SuiteOpts {
    let mut opts = SuiteOpts { quick: flag(args, "--quick"), ..SuiteOpts::default() };
    if let Some(seed) = opt_value(args, "--seed").and_then(|s| s.parse().ok()) {
        opts.seed = seed;
    }
    if let Some(n) = opt_value(args, "--samples").and_then(|s| s.parse().ok()) {
        opts.samples = n;
    }
    if let Some(n) = opt_value(args, "--warmup").and_then(|s| s.parse().ok()) {
        opts.warmup = n;
    }
    opts
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let areas = match selected_areas(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfbase: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        "list" => {
            for a in AREAS {
                println!("{a}");
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let opts = suite_opts(&args);
            let out_dir = opt_value(&args, "--out").map(PathBuf::from).or_else(reshape_perfbase::repo_root);
            let Some(out_dir) = out_dir else {
                eprintln!("perfbase: cannot locate the repo root — pass --out DIR");
                return ExitCode::FAILURE;
            };
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("perfbase: cannot create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            for area in areas {
                eprintln!("perfbase: running area `{area}` ({})", profile_name(opts.quick));
                let report = run_area(area, opts);
                match report.write(&out_dir) {
                    Ok(path) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("perfbase: cannot write {area}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "compare" => {
            let opts = suite_opts(&args);
            let base_dir = opt_value(&args, "--baseline").map(PathBuf::from).or_else(reshape_perfbase::repo_root);
            let Some(base_dir) = base_dir else {
                eprintln!("perfbase: cannot locate the repo root — pass --baseline DIR");
                return ExitCode::FAILURE;
            };
            let mut combined = CompareReport::default();
            for area in areas {
                let base_path = base_dir.join(BenchReport::file_name(area));
                let baseline = match BenchReport::load(&base_path) {
                    Ok(b) => b,
                    Err(e) => {
                        combined
                            .notes
                            .push(format!("area {area}: no usable baseline ({e}) — skipped"));
                        continue;
                    }
                };
                eprintln!("perfbase: comparing area `{area}` ({})", profile_name(opts.quick));
                let current = run_area(area, opts);
                combined.extend(compare(&baseline, &current));
            }
            print!("{}", render_table(&combined));
            if combined.has_regressions() {
                eprintln!("perfbase: FAIL — {} significant regression(s)", combined.regressions().count());
                ExitCode::FAILURE
            } else {
                eprintln!("perfbase: OK — no significant regressions");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

fn profile_name(quick: bool) -> &'static str {
    if quick {
        "quick"
    } else {
        "full"
    }
}
