//! Regenerates **Figure 5 and Table 5**: workload 2 — LU(21000) at 16
//! processors and Jacobi(8000) at 10 at t=0, Master-worker at t=560, a
//! statically scheduled FFT(8192) at t=650, on 30 processors.
//!
//! Paper's qualitative finding: jobs start near their sweet spots, so
//! dynamic scheduling shows only a small advantage over static, and
//! running applications shrink to accommodate the arrivals (LU frees
//! processors for Master-worker; Master-worker shrinks for the FFT).

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{workload2, ClusterSim, MachineParams, SimResult};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    dynamic: SimResult,
    static_: SimResult,
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let w = workload2();
    let dynamic = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);

    println!("Workload 2 on {} processors\n", w.total_procs);
    println!("(a) Processor allocation history (time s -> processors):");
    for job in &dynamic.jobs {
        let hist: Vec<String> = job
            .alloc_history
            .iter()
            .map(|&(t, p)| format!("{:.0}s:{}", t, p))
            .collect();
        println!("  {:<14} {}", job.name, hist.join(" -> "));
    }
    let busy: Vec<String> = dynamic
        .busy_series()
        .iter()
        .map(|&(t, b)| format!("{:.0}:{}", t, b))
        .collect();
    println!("\n(b) Busy processors [ReSHAPE]: {}", busy.join(" "));
    let busy_s: Vec<String> = stat
        .busy_series()
        .iter()
        .map(|&(t, b)| format!("{:.0}:{}", t, b))
        .collect();
    println!("(b) Busy processors [static]:  {}", busy_s.join(" "));

    println!("\nTable 5: Job turn-around time (seconds)");
    let mut table = Table::new(vec![
        "Job",
        "Initial procs",
        "Static",
        "Dynamic",
        "Difference",
    ]);
    for (d, s) in dynamic.jobs.iter().zip(&stat.jobs) {
        table.row(vec![
            d.name.clone(),
            d.initial_procs.to_string(),
            format!("{:.2}", s.turnaround),
            format!("{:.2}", d.turnaround),
            format!("{:.2}", s.turnaround - d.turnaround),
        ]);
    }
    table.print();
    println!(
        "\nPaper's Table 5 differences are small (69.87, 57.75, 1.67, 0.00 s):\n\
         workload 2's jobs start near their sweet spots, so resizing helps\n\
         only modestly — the same shape should appear above."
    );

    println!("\nAllocation chart (rows: jobs; glyphs: processors 1-9, a=10..z=35):");
    print!("{}", dynamic.gantt(100));

    if let Some(path) = json_arg() {
        write_json(
            &path,
            &Output {
                dynamic,
                static_: stat,
            },
        );
    }
    reshape_bench::flush_telemetry();
}
