//! Regenerates **Figure 4 and Table 4**: workload 1 — LU(21000) and
//! MM(14000) at t=0, Master-worker at t=450, Jacobi(8000) and FFT(8192) at
//! t=465, on 36 processors.
//!
//! Outputs: (a) per-job processor-allocation history, (b) total busy
//! processors for static vs ReSHAPE scheduling, and the Table 4 turnaround
//! comparison with average utilization (paper: 39.7% static → 70.7%
//! dynamic).

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{workload1, ClusterSim, MachineParams, SimResult};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    dynamic: SimResult,
    static_: SimResult,
}

fn print_alloc_histories(result: &SimResult) {
    println!("(a) Processor allocation history (time s -> processors):");
    for job in &result.jobs {
        let hist: Vec<String> = job
            .alloc_history
            .iter()
            .map(|&(t, p)| format!("{:.0}s:{}", t, p))
            .collect();
        println!("  {:<14} {}", job.name, hist.join(" -> "));
    }
}

fn print_busy(result: &SimResult, label: &str) {
    let series = result.busy_series();
    let compact: Vec<String> = series
        .iter()
        .map(|&(t, b)| format!("{:.0}:{}", t, b))
        .collect();
    println!("(b) Busy processors [{label}]: {}", compact.join(" "));
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let w = workload1();
    let dynamic = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);

    println!("Workload 1 on {} processors\n", w.total_procs);
    print_alloc_histories(&dynamic);
    println!();
    print_busy(&stat, "static");
    print_busy(&dynamic, "ReSHAPE");

    println!("\nTable 4: Job turn-around time (seconds)");
    let mut table = Table::new(vec![
        "Job",
        "Initial procs",
        "Static",
        "Dynamic",
        "Difference",
    ]);
    for (d, s) in dynamic.jobs.iter().zip(&stat.jobs) {
        table.row(vec![
            d.name.clone(),
            d.initial_procs.to_string(),
            format!("{:.2}", s.turnaround),
            format!("{:.2}", d.turnaround),
            format!("{:.2}", s.turnaround - d.turnaround),
        ]);
    }
    table.print();
    println!(
        "\nAverage processor utilization: static {:.1}%, dynamic {:.1}% \
         (paper: 39.7% and 70.7%)",
        stat.utilization * 100.0,
        dynamic.utilization * 100.0
    );
    println!(
        "Makespan: static {:.0}s, dynamic {:.0}s",
        stat.makespan, dynamic.makespan
    );
    reshape_bench::record_metric(
        "fig4",
        "workload1_dynamic_makespan_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        dynamic.makespan,
    );
    reshape_bench::record_metric(
        "fig4",
        "workload1_dynamic_utilization",
        "ratio",
        reshape_perfbase::MetricKind::Virtual,
        dynamic.utilization,
    );
    // Window series feed the OpenMetrics exporter when RESHAPE_METRICS is
    // set (utilization / queue-wait / resizes per sim-time window).
    dynamic.publish_metrics(8);

    println!("\nAllocation chart (rows: jobs; glyphs: processors 1-9, a=10..z=35):");
    print!("{}", dynamic.gantt(100));

    if let Some(path) = json_arg() {
        write_json(
            &path,
            &Output {
                dynamic,
                static_: stat,
            },
        );
    }
    reshape_bench::flush_telemetry();
}
