//! Ablation: heterogeneous clusters (paper §5 future work).
//!
//! The paper's System X was homogeneous; its future work calls for
//! heterogeneous support as a plug-in. Here a fraction of the cluster's
//! slots run at reduced speed, synchronous applications run at the pace of
//! their slowest slot, and we compare:
//!
//! * **speed-aware placement** (fastest free slots first) vs
//! * **naive placement** (slot id order, heterogeneity-blind)
//!
//! on the paper's workload 1, across slow-slot fractions.

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{workload1, ClusterSim, MachineParams, SimResult};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    slow_fraction: f64,
    aware_mean_turnaround: f64,
    naive_mean_turnaround: f64,
    aware_utilization: f64,
    naive_utilization: f64,
    naive_penalty: f64,
}

fn mean_turnaround(r: &SimResult) -> f64 {
    r.jobs.iter().map(|j| j.turnaround).sum::<f64>() / r.jobs.len() as f64
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let w = workload1();
    let total = w.total_procs;

    println!(
        "Heterogeneity ablation on workload 1 ({total} slots; slow slots run at 0.5x;\n\
         slow slots interleaved so naive id-order placement hits them first)\n"
    );
    let mut table = Table::new(vec![
        "slow slots",
        "aware mean TAT (s)",
        "naive mean TAT (s)",
        "naive penalty",
        "aware util",
        "naive util",
    ]);
    let mut rows = Vec::new();
    for slow_count in [0usize, 6, 12, 18] {
        // Interleave slow slots across the id range.
        let mut speeds = vec![1.0; total];
        if let Some(stride) = total.checked_div(slow_count).filter(|&s| s > 0) {
            for k in 0..slow_count {
                speeds[k * stride] = 0.5;
            }
        }
        let aware = ClusterSim::new(total, machine)
            .with_slot_speeds(speeds.clone())
            .run(&w.jobs);
        let naive = ClusterSim::new(total, machine)
            .with_slot_speeds(speeds)
            .with_naive_placement()
            .run(&w.jobs);
        let (am, nm) = (mean_turnaround(&aware), mean_turnaround(&naive));
        table.row(vec![
            format!("{slow_count}/{total}"),
            format!("{am:.0}"),
            format!("{nm:.0}"),
            format!("{:.2}x", nm / am),
            format!("{:.1}%", aware.utilization * 100.0),
            format!("{:.1}%", naive.utilization * 100.0),
        ]);
        rows.push(Row {
            slow_fraction: slow_count as f64 / total as f64,
            aware_mean_turnaround: am,
            naive_mean_turnaround: nm,
            aware_utilization: aware.utilization,
            naive_utilization: naive.utilization,
            naive_penalty: nm / am,
        });
    }
    table.print();
    println!(
        "\nReading: with no slow slots the placements tie; as slow slots appear,\n\
         heterogeneity-blind placement drags whole synchronous jobs down to the\n\
         slow slots' pace, while speed-aware allocation shields jobs until the\n\
         fast slots run out."
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows);
    }
    reshape_bench::flush_telemetry();
}
