//! Regenerates **Figure 2(b)**: data-redistribution overhead at each
//! expansion step of the LU configuration chains, computed from the
//! *actual* contention-free communication schedules built by
//! `reshape-redist` and priced under the Gigabit Ethernet network model.
//!
//! Expected shape (paper §4.1.2): cost grows with matrix size, and for a
//! fixed matrix it falls as the processor count grows (less data per
//! process, more parallel links).

use reshape_bench::{json_arg, write_json, Table};
use reshape_blockcyclic::Descriptor;
use reshape_clustersim::{MachineParams, MODEL_BLOCK};
use reshape_core::{ProcessorConfig, TopologyPref};
use reshape_redist::{evaluate_2d, plan_2d};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    n: usize,
    /// (processor count *after* expansion, redistribution seconds).
    points: Vec<(usize, f64)>,
}

fn main() {
    reshape_bench::telemetry_from_args();
    let machine = MachineParams::system_x();
    let cases: Vec<(usize, (usize, usize), usize)> = vec![
        (8000, (1, 2), 40),
        (12000, (1, 2), 48),
        (14000, (2, 2), 49),
        (16000, (2, 2), 40),
        (20000, (2, 2), 40),
        (21000, (2, 2), 49),
        (24000, (2, 4), 48),
    ];

    let mut series = Vec::new();
    for &(n, start, cap) in &cases {
        let pref = TopologyPref::Grid { problem_size: n };
        let chain = pref.chain_from(ProcessorConfig::new(start.0, start.1), cap);
        let mut points = Vec::new();
        for w in chain.windows(2) {
            let (from, to) = (w[0], w[1]);
            let src = Descriptor::square(n, MODEL_BLOCK, from.rows, from.cols);
            let dst = Descriptor::square(n, MODEL_BLOCK, to.rows, to.cols);
            let cost = evaluate_2d(&plan_2d(src, dst), 8, &machine.redist_net());
            points.push((to.procs(), cost.seconds));
        }
        series.push(Series { n, points });
    }

    println!("Figure 2(b): Redistribution overhead for expansion (seconds)");
    let mut table = Table::new(vec![
        "procs \\ N", "8000", "12000", "14000", "16000", "20000", "21000", "24000",
    ]);
    let mut all_procs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(p, _)| p))
        .collect();
    all_procs.sort_unstable();
    all_procs.dedup();
    for p in all_procs {
        let mut row = vec![p.to_string()];
        for s in &series {
            match s.points.iter().find(|&&(pp, _)| pp == p) {
                Some(&(_, t)) => row.push(format!("{t:.2}")),
                None => row.push("-".to_string()),
            }
        }
        table.row(row);
    }
    table.print();

    // Shape assertions the paper's text makes.
    let first_8000 = series[0].points.first().unwrap().1;
    let last_8000 = series[0].points.last().unwrap().1;
    let first_24000 = series[6].points.first().unwrap().1;
    println!(
        "\n8000: first expansion {first_8000:.2}s vs last {last_8000:.2}s (cost falls with procs)\n\
         24000 first expansion {first_24000:.2}s vs 8000 first {first_8000:.2}s (cost grows with N)"
    );
    reshape_bench::record_metric(
        "fig2b",
        "redist_8000_first_expand_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        first_8000,
    );
    reshape_bench::record_metric(
        "fig2b",
        "redist_24000_first_expand_virtual_s",
        "s",
        reshape_perfbase::MetricKind::Virtual,
        first_24000,
    );

    if let Some(path) = json_arg() {
        write_json(&path, &series);
    }
    reshape_bench::flush_telemetry();
}
