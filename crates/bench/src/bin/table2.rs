//! Regenerates **Table 2**: processor configurations for the paper's
//! problem sizes, produced by the topology-selection rules of
//! `reshape-core` (dimension divisibility + nearly-square growth).

use reshape_bench::{json_arg, write_json, Table};
use reshape_core::{ProcessorConfig, TopologyPref};

fn main() {
    reshape_bench::telemetry_from_args();
    let grid_cases: Vec<(&str, usize, (usize, usize), usize)> = vec![
        ("8000 (LU, MM)", 8000, (1, 2), 40),
        ("12000 (LU, MM)", 12000, (1, 2), 48),
        ("14000 (LU, MM)", 14000, (2, 2), 49),
        ("16000 (LU, MM)", 16000, (2, 2), 40),
        ("20000 (LU, MM)", 20000, (2, 2), 40),
        ("21000 (LU, MM)", 21000, (2, 2), 49),
        ("24000 (LU, MM)", 24000, (2, 4), 48),
    ];

    let mut table = Table::new(vec!["Problem size", "Processor configurations"]);
    let mut json: Vec<(String, Vec<String>)> = Vec::new();

    for (label, n, start, cap) in grid_cases {
        let pref = TopologyPref::Grid { problem_size: n };
        let chain = pref.chain_from(ProcessorConfig::new(start.0, start.1), cap);
        let strs: Vec<String> = chain.iter().map(|c| c.to_string()).collect();
        table.row(vec![label.to_string(), strs.join(", ")]);
        json.push((label.to_string(), strs));
    }

    let jacobi = TopologyPref::Linear {
        problem_size: 8000,
        even_only: true,
    };
    let jc: Vec<String> = jacobi
        .chain_from(ProcessorConfig::linear(4), 50)
        .iter()
        .map(|c| c.procs().to_string())
        .collect();
    table.row(vec!["8000 (Jacobi)".to_string(), jc.join(", ")]);
    json.push(("8000 (Jacobi)".to_string(), jc));

    let fft = TopologyPref::Linear {
        problem_size: 8192,
        even_only: true,
    };
    let fc: Vec<String> = fft
        .chain_from(ProcessorConfig::linear(2), 50)
        .iter()
        .map(|c| c.procs().to_string())
        .collect();
    table.row(vec!["8192 (FFT)".to_string(), fc.join(", ")]);
    json.push(("8192 (FFT)".to_string(), fc));

    let mw = TopologyPref::AnyCount {
        min: 4,
        max: 22,
        step: 2,
    };
    let mc: Vec<String> = mw
        .chain_from(ProcessorConfig::linear(4), 50)
        .iter()
        .map(|c| c.procs().to_string())
        .collect();
    table.row(vec!["20000 (Master-worker)".to_string(), mc.join(", ")]);
    json.push(("20000 (Master-worker)".to_string(), mc));

    println!("Table 2: Processor configurations for various problem sizes");
    table.print();
    println!(
        "\nNote: the paper's 21000 row lists '4x5' where the regular\n\
         nearly-square rule gives '4x4', and its 24000 row includes a '3x4'\n\
         detour; all other rows match the rule exactly (see EXPERIMENTS.md)."
    );

    if let Some(path) = json_arg() {
        write_json(&path, &json);
    }
    reshape_bench::flush_telemetry();
}
