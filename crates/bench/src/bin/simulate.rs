//! `simulate` — run an arbitrary workload through the ReSHAPE cluster
//! simulator from a JSON description.
//!
//! ```text
//! cargo run -p reshape-bench --bin simulate -- workload.json [--json out.json] [--summary-json out.json] [--top]
//! cargo run -p reshape-bench --bin simulate -- --nodes 10000 --jobs 1000000 [--seed S] [--summary-json out.json]
//! cargo run -p reshape-bench --bin simulate -- --print-example
//! ```
//!
//! Both run modes accept `--tie-break fifo|seeded:N`, which selects the
//! DES queue's ordering among simultaneous events: `fifo` (default)
//! reproduces the recorded-snapshot order, `seeded:N` permutes
//! same-timestamp events under seed `N` to flush order-dependent policy
//! assumptions (still fully deterministic per seed).
//!
//! The input names the cluster size, queue/remap policies, redistribution
//! mode, optional advance reservations, and the job list (arrival,
//! topology, initial configuration, performance model, priority). Output is
//! the turnaround table plus utilization; `--json` dumps the full
//! [`SimResult`](reshape_clustersim::SimResult), while `--summary-json`
//! writes just the run-summary table (makespan, utilization, turnaround
//! statistics, resize activity) as one flat JSON object for scripts that
//! only want the headline numbers.
//!
//! `--top` replays the run as a live terminal dashboard (pool occupancy,
//! per-job state and iteration-time sparkline, §3.1 decision feed),
//! refreshing on a sim-time cadence. With `RESHAPE_TRACE=trace.json` set,
//! the run also exports a Perfetto-loadable Chrome trace plus a
//! `trace.json.critpath.json` sidecar, and prints the per-job
//! critical-path attribution (compute / queue wait / spawn /
//! redistribution / rollback-replay shares of each turnaround).

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{AppModel, ClusterSim, MachineParams, RedistMode, SimJob};
use reshape_core::{JobSpec, ProcessorConfig, QueuePolicy, RemapPolicy, TopologyPref};
use serde::Deserialize;

#[derive(Deserialize)]
struct WorkloadFile {
    total_procs: usize,
    #[serde(default = "default_queue")]
    queue_policy: QueuePolicy,
    #[serde(default = "default_remap")]
    remap_policy: RemapPolicy,
    #[serde(default = "default_redist")]
    redist_mode: RedistMode,
    /// `(start, end, procs)` advance reservations.
    #[serde(default)]
    reservations: Vec<(f64, f64, usize)>,
    jobs: Vec<JobFile>,
}

fn default_queue() -> QueuePolicy {
    QueuePolicy::Fcfs
}
fn default_remap() -> RemapPolicy {
    RemapPolicy::Paper
}
fn default_redist() -> RedistMode {
    RedistMode::Reshape
}

#[derive(Deserialize)]
struct JobFile {
    name: String,
    arrival: f64,
    iterations: usize,
    topology: TopologyPref,
    /// `[rows, cols]`.
    initial: (usize, usize),
    model: AppModel,
    #[serde(default)]
    priority: u8,
    #[serde(default, rename = "static")]
    static_: bool,
    #[serde(default)]
    cancel_at: Option<f64>,
    #[serde(default)]
    fail_at: Option<f64>,
    /// Owning tenant for federated/multi-tenant admission (0 = untenanted).
    #[serde(default)]
    tenant: u32,
}

const EXAMPLE: &str = r#"{
  "total_procs": 36,
  "queue_policy": "Fcfs",
  "remap_policy": "Paper",
  "redist_mode": "Reshape",
  "reservations": [],
  "jobs": [
    {
      "name": "LU",
      "arrival": 0.0,
      "iterations": 10,
      "topology": { "Grid": { "problem_size": 21000 } },
      "initial": [2, 3],
      "model": { "Lu": { "n": 21000 } }
    },
    {
      "name": "Master-worker",
      "arrival": 450.0,
      "iterations": 10,
      "priority": 2,
      "topology": { "AnyCount": { "min": 2, "max": 22, "step": 2 } },
      "initial": [1, 2],
      "model": { "MasterWorker": { "units": 20000, "unit_time": 0.0007375 } }
    }
  ]
}"#;

/// Parse `--summary-json <path>` from argv.
fn summary_json_arg(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--summary-json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Parse a `--flag <value>` numeric option.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let raw = args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("simulate: {flag} expects a number, got `{raw}`");
            std::process::exit(2);
        }
    }
}

/// Parse `--tie-break fifo|seeded:N`: the ordering of simultaneous DES
/// events. `fifo` (the default) reproduces the recorded-snapshot order;
/// `seeded:N` runs the same workload under a seeded permutation of
/// same-timestamp events to flush order-dependent policy assumptions.
fn tie_break_arg(args: &[String]) -> reshape_clustersim::TieBreak {
    let Some(raw) = args
        .iter()
        .position(|a| a == "--tie-break")
        .and_then(|i| args.get(i + 1))
    else {
        return reshape_clustersim::TieBreak::Fifo;
    };
    if raw == "fifo" {
        return reshape_clustersim::TieBreak::Fifo;
    }
    if let Some(seed) = raw.strip_prefix("seeded:") {
        if let Ok(s) = seed.parse() {
            return reshape_clustersim::TieBreak::Seeded(s);
        }
    }
    eprintln!("simulate: --tie-break expects `fifo` or `seeded:N`, got `{raw}`");
    std::process::exit(2);
}

/// The scale sweep (`--nodes N --jobs M`): a synthetic seeded job stream
/// through the DES core — no workload file, no per-rank threads, sized for
/// thousands of nodes and millions of jobs in one process.
fn run_scale_sweep(args: &[String], nodes: usize) {
    let jobs: u64 = flag_value(args, "--jobs").unwrap_or(10_000);
    let mut cfg = reshape_clustersim::ScaleConfig::new(nodes, jobs);
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = seed;
    }
    if let Some(pct) = flag_value(args, "--resizable") {
        cfg.resizable_percent = pct;
    }
    if let Some(iters) = flag_value(args, "--iters") {
        cfg.max_iterations = iters;
    }
    cfg.tie_break = tie_break_arg(args);
    let r = reshape_clustersim::run_scale(&cfg);
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["nodes".into(), r.nodes.to_string()]);
    table.row(vec!["jobs".into(), r.jobs.to_string()]);
    table.row(vec!["seed".into(), r.seed.to_string()]);
    table.row(vec![
        "finished / failed / cancelled".into(),
        format!("{} / {} / {}", r.jobs_finished, r.jobs_failed, r.jobs_cancelled),
    ]);
    table.row(vec![
        "expansions / shrinks".into(),
        format!("{} / {}", r.expansions, r.shrinks),
    ]);
    table.row(vec!["makespan (virtual s)".into(), format!("{:.0}", r.makespan)]);
    table.row(vec!["utilization".into(), format!("{:.1}%", r.utilization * 100.0)]);
    table.row(vec!["peak queue depth".into(), r.peak_queue_depth.to_string()]);
    table.row(vec!["records pruned".into(), r.records_pruned.to_string()]);
    table.row(vec!["events processed".into(), r.events_processed.to_string()]);
    table.row(vec![
        "wall (s) / events per sec".into(),
        format!("{:.2} / {:.0}", r.wall_seconds, r.events_per_sec),
    ]);
    table.print();
    if let Some(out) = summary_json_arg(args) {
        write_json(&out, &r);
    }
}

fn main() {
    reshape_bench::telemetry_from_args();
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--print-example") {
        println!("{EXAMPLE}");
        return;
    }
    let top = args.iter().any(|a| a == "--top");
    if top && reshape_telemetry::mode() == reshape_telemetry::Mode::Off {
        // The dashboard's decision feed reads the telemetry journal.
        reshape_telemetry::set_mode(reshape_telemetry::Mode::Text);
    }
    // Scale mode bypasses the workload file entirely: the job stream is
    // derived from the seed inside the DES core.
    if let Some(nodes) = flag_value(&args, "--nodes") {
        run_scale_sweep(&args, nodes);
        return;
    }
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            eprintln!(
                "usage: simulate <workload.json> [--json out.json] [--top] [--tie-break fifo|seeded:N] | --print-example\n\
                 \x20      simulate --nodes N --jobs M [--seed S] [--resizable PCT] [--iters K] [--tie-break fifo|seeded:N] [--summary-json out.json]"
            );
            std::process::exit(2);
        });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let wf: WorkloadFile = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("invalid workload file {path}: {e}");
        std::process::exit(2);
    });

    let jobs: Vec<SimJob> = wf
        .jobs
        .into_iter()
        .map(|j| {
            if let Some(t) = j.cancel_at {
                if t < j.arrival {
                    eprintln!("job '{}': cancel_at {t} precedes arrival {}", j.name, j.arrival);
                    std::process::exit(2);
                }
            }
            if let Some(t) = j.fail_at {
                if t < j.arrival {
                    eprintln!("job '{}': fail_at {t} precedes arrival {}", j.name, j.arrival);
                    std::process::exit(2);
                }
            }
            let mut spec = JobSpec::new(
                j.name,
                j.topology,
                ProcessorConfig::new(j.initial.0, j.initial.1),
                j.iterations,
            )
            .with_priority(j.priority);
            if j.static_ {
                spec = spec.static_job();
            }
            SimJob {
                spec,
                model: j.model,
                arrival: j.arrival,
                cancel_at: j.cancel_at,
                fail_at: j.fail_at,
                tenant: j.tenant,
            }
        })
        .collect();

    let mut sim = ClusterSim::new(wf.total_procs, MachineParams::system_x())
        .with_policy(wf.queue_policy)
        .with_remap_policy(wf.remap_policy)
        .with_redist_mode(wf.redist_mode)
        .with_des_tie_break(tie_break_arg(&args));
    for (s, e, p) in wf.reservations {
        sim = sim.with_reservation(s, e, p);
    }
    let result = sim.run(&jobs);

    if top {
        // Replay the completed run at ~16 frames/s, each frame sampling
        // cluster state at an evenly spaced virtual time. Deterministic
        // content (only the refresh pacing is wall-clock).
        use std::io::Write as _;
        let decisions = reshape_telemetry::snapshot_events();
        let frames = 48u32;
        for f in 0..=frames {
            let t = result.makespan * f as f64 / frames as f64;
            print!(
                "\x1b[2J\x1b[H{}",
                reshape_clustersim::dashboard::frame(&result, &decisions, t, 100)
            );
            std::io::stdout().flush().ok();
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        println!();
    }

    let mut table = Table::new(vec![
        "job", "arrival", "started", "finished", "turnaround", "redist (s)",
    ]);
    for j in &result.jobs {
        table.row(vec![
            j.name.clone(),
            format!("{:.0}", j.submitted),
            format!("{:.0}", j.started),
            format!("{:.0}", j.finished),
            format!("{:.1}", j.turnaround),
            format!("{:.1}", j.redist_total),
        ]);
    }
    table.print();
    println!(
        "utilization {:.1}%  makespan {:.0}s  ({} processors)",
        result.utilization * 100.0,
        result.makespan,
        result.total_procs
    );

    // End-of-run snapshot (SimResult::telemetry): the paper's aggregate
    // quantities — utilization, turnaround statistics, resize activity.
    let t = &result.telemetry;
    println!("\n-- run summary --");
    let mut summary = Table::new(vec!["metric", "value"]);
    summary.row(vec![
        "jobs finished / failed / cancelled".to_string(),
        format!("{} / {} / {}", t.jobs_finished, t.jobs_failed, t.jobs_cancelled),
    ]);
    summary.row(vec![
        "expansions / shrinks".to_string(),
        format!("{} / {}", t.expansions, t.shrinks),
    ]);
    summary.row(vec![
        "utilization".to_string(),
        format!("{:.1}%", t.utilization * 100.0),
    ]);
    summary.row(vec![
        "turnaround mean / p95 / max (s)".to_string(),
        format!(
            "{:.1} / {:.1} / {:.1}",
            t.mean_turnaround, t.p95_turnaround, t.max_turnaround
        ),
    ]);
    summary.row(vec![
        "compute / redistribution (s)".to_string(),
        format!("{:.1} / {:.1}", t.compute_seconds_total, t.redist_seconds_total),
    ]);
    summary.row(vec![
        "bytes redistributed".to_string(),
        t.bytes_redistributed.to_string(),
    ]);
    summary.print();

    // Publish cluster-level series (per-window utilization, queue wait,
    // resize counts) into the registry for the OpenMetrics exporter.
    result.publish_metrics(8);

    if let Some(out) = summary_json_arg(&args) {
        let flat = serde_json::json!({
            "makespan": result.makespan,
            "total_procs": result.total_procs,
            "jobs_finished": t.jobs_finished,
            "jobs_failed": t.jobs_failed,
            "jobs_cancelled": t.jobs_cancelled,
            "expansions": t.expansions,
            "shrinks": t.shrinks,
            "utilization": t.utilization,
            "mean_turnaround": t.mean_turnaround,
            "p95_turnaround": t.p95_turnaround,
            "max_turnaround": t.max_turnaround,
            "compute_seconds_total": t.compute_seconds_total,
            "redist_seconds_total": t.redist_seconds_total,
            "bytes_redistributed": t.bytes_redistributed,
        });
        write_json(&out, &flat);
    }

    // Causal trace: with RESHAPE_TRACE set, print the per-job critical-path
    // attribution and export the Chrome/Perfetto trace (+ the structured
    // `.critpath.json` sidecar for downstream tooling).
    if reshape_telemetry::trace::enabled() {
        let spans = reshape_telemetry::trace::drain_spans();
        let paths = reshape_telemetry::critpath::analyze(&spans);
        if !paths.is_empty() {
            println!("\n-- critical path (per job, seconds) --");
            print!("{}", reshape_telemetry::critpath::render_table(&paths));
        }
        reshape_telemetry::trace::write_trace_files(&spans);
    }

    if let Some(out) = json_arg() {
        write_json(&out, &result);
    }
    reshape_bench::flush_telemetry();
}
