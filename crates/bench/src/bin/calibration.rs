//! Calibration transparency: every anchor point the performance models are
//! tuned against, with the paper-reported value, the model's prediction and
//! the relative error. EXPERIMENTS.md summarizes these; this binary
//! recomputes them from the current constants so drift is visible.

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{AppModel, MachineParams};
use reshape_core::ProcessorConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Anchor {
    what: String,
    paper: f64,
    model: f64,
    rel_err_percent: f64,
}

fn main() {
    reshape_bench::telemetry_from_args();
    let m = MachineParams::system_x();
    let mut anchors: Vec<Anchor> = Vec::new();
    let mut push = |what: &str, paper: f64, model: f64| {
        anchors.push(Anchor {
            what: what.to_string(),
            paper,
            model,
            rel_err_percent: (model - paper) / paper * 100.0,
        });
    };

    // LU iteration times (Figure 3(a) measured column).
    let lu12 = AppModel::Lu { n: 12000 };
    for (cfg, paper) in [
        (ProcessorConfig::new(1, 2), 129.63),
        (ProcessorConfig::new(2, 2), 112.52),
        (ProcessorConfig::new(2, 3), 82.31),
        (ProcessorConfig::new(3, 3), 79.61),
        (ProcessorConfig::new(3, 4), 69.85),
        (ProcessorConfig::new(4, 4), 74.91),
    ] {
        push(
            &format!("LU-12000 iter time @ {cfg}"),
            paper,
            lu12.iter_time(cfg, &m),
        );
    }

    // LU-24000 16 -> 20 relative improvement (Figure 2(a) text: 19.1%).
    let lu24 = AppModel::Lu { n: 24000 };
    let t16 = lu24.iter_time(ProcessorConfig::new(4, 4), &m);
    let t20 = lu24.iter_time(ProcessorConfig::new(4, 5), &m);
    push("LU-24000 improvement 16->20 (%)", 19.1, (t16 - t20) / t16 * 100.0);

    // Redistribution costs for LU-12000 expansions (Figure 3(a)).
    for (from, to, paper) in [
        ((1usize, 2usize), (2usize, 2usize), 8.00),
        ((2, 2), (2, 3), 7.74),
        ((2, 3), (3, 3), 5.25),
        ((3, 3), (3, 4), 4.86),
        ((3, 4), (4, 4), 4.41),
    ] {
        let c = lu12.redist_cost(
            ProcessorConfig::new(from.0, from.1),
            ProcessorConfig::new(to.0, to.1),
            &m,
        );
        push(
            &format!("LU-12000 redist {}x{} -> {}x{}", from.0, from.1, to.0, to.1),
            paper,
            c,
        );
    }

    // Static per-iteration times implied by Tables 4/5 (10 iterations).
    push(
        "MW(W1) iter time @ 2 procs",
        147.47 / 10.0,
        AppModel::MasterWorker { units: 20000, unit_time: 0.7375e-3 }
            .iter_time(ProcessorConfig::linear(2), &m),
    );
    push(
        "Jacobi-8000(W1) iter time @ 4 procs",
        3266.40 / 10.0,
        AppModel::Jacobi { n: 8000, sweeps: 34300 }.iter_time(ProcessorConfig::linear(4), &m),
    );
    push(
        "FFT-8192(W1) iter time @ 4 procs",
        840.00 / 10.0,
        AppModel::Fft { n: 8192, batch: 17 }.iter_time(ProcessorConfig::linear(4), &m),
    );
    push(
        "LU-21000(W1) iter time @ 6 procs",
        4482.60 / 10.0,
        AppModel::Lu { n: 21000 }.iter_time(ProcessorConfig::new(2, 3), &m),
    );

    println!("Model calibration vs paper anchors (MachineParams::system_x())\n");
    let mut table = Table::new(vec!["anchor", "paper", "model", "rel err"]);
    for a in &anchors {
        table.row(vec![
            a.what.clone(),
            format!("{:.2}", a.paper),
            format!("{:.2}", a.model),
            format!("{:+.1}%", a.rel_err_percent),
        ]);
    }
    table.print();
    let mean_abs: f64 = anchors
        .iter()
        .map(|a| a.rel_err_percent.abs())
        .sum::<f64>()
        / anchors.len() as f64;
    println!("\nmean |relative error| over {} anchors: {mean_abs:.1}%", anchors.len());
    println!(
        "(Shapes, not absolutes, are the reproduction target — see\n\
         EXPERIMENTS.md; the largest errors are the paper's own non-smooth\n\
         measured points, e.g. LU-12000's 4-processor outlier.)"
    );

    if let Some(path) = json_arg() {
        write_json(&path, &anchors);
    }
    reshape_bench::flush_telemetry();
}
