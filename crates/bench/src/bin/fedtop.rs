//! `fedtop` — live text dashboard for the federation control plane, and
//! the CI federation trace-smoke driver.
//!
//! ```text
//! cargo run -p reshape-bench --bin fedtop -- [--interval 2.0] [--windows 4] \
//!     [--flightrec flightrec.jsonl]
//! ```
//!
//! Drives the scripted fence scenario (the same one
//! `reshape_federation::sim`'s tests pin down): two 4-processor shards,
//! a 6-wide job that borrows across the pair, a partition that severs
//! them long enough for the suspicion timeout to fence the lease, and an
//! anti-entropy heal that repairs the ledger. A [`fedtop`] frame —
//! per-shard state, per-tenant quota bars, the live lease table — is
//! printed every `--interval` of virtual time and once more at the end.
//!
//! With `RESHAPE_TRACE=<path>` set, the run exports the Perfetto-loadable
//! causal trace in which the fenced lease's full chain (grant → partition
//! → suspect → epoch bump → fence → heal repair) is connected by parent
//! edges — CI validates it with `trace_check`. `--flightrec <path>` dumps
//! the control-plane flight recorder as JSONL. Per-tenant SLO series go
//! through the OpenMetrics exporter (`RESHAPE_METRICS`).

use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};
use reshape_federation::sim::{run_with_fed, FedJob, FedSimConfig, PartitionPlan};
use reshape_federation::{fedtop, TenantConfig};

fn scripted_fence_scenario() -> FedSimConfig {
    let spec = |name: &str, procs, iters| {
        JobSpec::new(
            name,
            TopologyPref::AnyCount {
                min: 1,
                max: 64,
                step: 1,
            },
            ProcessorConfig::linear(procs),
            iters,
        )
    };
    let mk = |name: &str, procs, iters, arrival, work| FedJob {
        tenant: 0,
        spec: spec(name, procs, iters),
        arrival,
        work,
        fail_at: None,
        cancel_at: None,
    };
    // `big` borrows 2 procs from `fill`'s shard, then the pair is severed
    // long enough for suspicion to fence the lease; the heal repairs.
    let jobs = vec![mk("fill", 2, 30, 0.0, 4.0), mk("big", 6, 30, 1.0, 6.0)];
    let tenants = vec![TenantConfig::new(32, 1.0, 16)];
    let mut cfg = FedSimConfig::new(vec![4, 4], tenants, jobs);
    cfg.lease.min_spare = 0;
    cfg.lease.term = 60.0;
    cfg.lease.grace = 10.0;
    cfg.lease.suspicion = 5.0;
    cfg.partitions = vec![PartitionPlan {
        groups: vec![vec![0], vec![1]],
        t_start: 5.0,
        t_heal: 25.0,
    }];
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let interval = get("--interval")
        .map(|v| v.parse::<f64>().expect("--interval takes virtual seconds"))
        .unwrap_or(2.0)
        .max(1e-6);
    let windows: usize = get("--windows")
        .map(|v| v.parse().expect("--windows takes a count"))
        .unwrap_or(4);
    let flightrec_out = get("--flightrec");

    let mut next_frame = 0.0f64;
    let (report, fed) = run_with_fed(scripted_fence_scenario(), |fed, t| {
        if t >= next_frame {
            print!("{}", fedtop::frame(fed, t));
            println!();
            next_frame = (t / interval).floor() * interval + interval;
        }
    });
    print!("{}", fedtop::frame(&fed, fed.now()));
    println!(
        "\nrun: {} submitted / {} finished · {} leases granted, {} fenced, {} reclaimed · \
         {} heal repairs · {} partitions healed",
        report.submitted,
        report.finished,
        report.leases_granted,
        report.leases_fenced,
        report.leases_reclaimed,
        report.heal_repairs,
        report.partitions_healed,
    );

    // Per-tenant SLO series (admit latency, queue depth, shed rate, quota
    // utilization) into the registry for the OpenMetrics exporter.
    report.publish_metrics(windows);

    if let Some(path) = flightrec_out {
        let dump = fed.flightrec().dump_jsonl();
        std::fs::write(&path, dump).unwrap_or_else(|e| {
            eprintln!("fedtop: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "flight recorder: {} events ({} dropped) -> {path}",
            fed.flightrec().len(),
            fed.flightrec().dropped()
        );
    }

    // Causal trace: with RESHAPE_TRACE set, export the Chrome/Perfetto
    // trace (lease + shard-control traces) for trace_check.
    if reshape_telemetry::trace::enabled() {
        let spans = reshape_telemetry::trace::drain_spans();
        println!("trace: {} spans exported", spans.len());
        reshape_telemetry::trace::write_trace_files(&spans);
    }
    reshape_bench::flush_telemetry();
}
