//! Regenerates **Figure 3(a)**: the iteration-time / ΔT / redistribution
//! table for LU on a 12000×12000 matrix, 10 iterations, starting on 2
//! processors with the cluster otherwise idle.
//!
//! The scheduler is the real ReSHAPE policy code; the application's
//! iteration times are the paper's own measured profile (Table model), and
//! the redistribution costs come from our schedule evaluator. The paper's
//! trajectory — expand 2 → 4 → 6 → 9 → 12 → 16, detect that 16 degraded
//! performance (ΔT = −5.06), revert to 12 and hold — must reproduce.

use reshape_bench::{json_arg, write_json, Table};
use reshape_clustersim::{fig3a_job, ClusterSim, MachineParams};

fn main() {
    reshape_bench::telemetry_from_args();
    let sim = ClusterSim::new(36, MachineParams::system_x());
    let result = sim.run(&[fig3a_job()]);
    let job = &result.jobs[0];

    println!("Figure 3(a): Iteration and redistribution for LU, problem size 12000");
    let mut table = Table::new(vec![
        "Processors",
        "Iteration time (s)",
        "dT (s)",
        "Redistribution cost (s)",
    ]);
    let mut prev: Option<f64> = None;
    for rec in &job.iter_log {
        let dt = prev.map_or(0.0, |p| p - rec.iter_time);
        table.row(vec![
            rec.config.procs().to_string(),
            format!("{:.2}", rec.iter_time),
            format!("{:.2}", dt),
            format!("{:.2}", rec.redist_time),
        ]);
        prev = Some(rec.iter_time);
    }
    table.print();

    let trajectory: Vec<usize> = job.alloc_history.iter().map(|&(_, p)| p).collect();
    println!("\nAllocation trajectory: {trajectory:?}");
    println!("Paper's trajectory:    [2, 4, 6, 9, 12, 16, 12, 0] (0 = job finished)");
    println!(
        "Paper's redistribution costs: 8.00, 7.74, 5.25, 4.86, 4.41 s (ours from real schedules)"
    );
    println!("Total turnaround: {:.1}s", job.turnaround);

    if let Some(path) = json_arg() {
        write_json(&path, job);
    }
    reshape_bench::flush_telemetry();
}
