//! Ablation: what does the contention-free communication schedule buy?
//!
//! The paper's redistribution engine computes a generalized-circulant
//! schedule whose steps are partial permutations — no process endpoint is
//! ever hit by two concurrent messages. This harness compares it against a
//! naive single-burst plan carrying the *same bytes*, under a
//! contention-aware network model with TCP-incast-style receiver
//! degradation. Expected result: shrinks (fan-in) suffer badly without the
//! schedule; expansions (fan-out) are sender-bound either way.

use reshape_bench::{json_arg, write_json, Table};
use reshape_blockcyclic::Descriptor;
use reshape_clustersim::{MachineParams, MODEL_BLOCK};
use reshape_redist::{evaluate_2d_contended, plan_2d, plan_naive_2d};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    transition: String,
    scheduled_s: f64,
    naive_s: f64,
    ratio: f64,
}

fn main() {
    reshape_bench::telemetry_from_args();
    let net = MachineParams::system_x().redist_net();
    type Case = (usize, (usize, usize), (usize, usize));
    let cases: Vec<Case> = vec![
        // Expansions (fan-out).
        (8000, (2, 2), (4, 5)),
        (12000, (2, 3), (4, 4)),
        (24000, (4, 4), (5, 6)),
        // Shrinks (fan-in) — the shrink-for-queued-jobs path of §3.1.
        (8000, (4, 5), (2, 2)),
        (12000, (4, 4), (2, 3)),
        (24000, (5, 6), (4, 4)),
        (24000, (6, 8), (2, 4)),
    ];

    println!("Ablation: contention-free circulant schedule vs naive single burst");
    println!("(same bytes moved; contention-aware cost model with incast penalty)\n");
    let mut table = Table::new(vec!["N", "transition", "scheduled (s)", "naive (s)", "naive/scheduled"]);
    let mut rows = Vec::new();
    for (n, from, to) in cases {
        let src = Descriptor::square(n, MODEL_BLOCK, from.0, from.1);
        let dst = Descriptor::square(n, MODEL_BLOCK, to.0, to.1);
        let sched = evaluate_2d_contended(&plan_2d(src, dst), 8, &net).seconds;
        let naive = evaluate_2d_contended(&plan_naive_2d(src, dst), 8, &net).seconds;
        let transition = format!(
            "{}x{} -> {}x{} ({})",
            from.0,
            from.1,
            to.0,
            to.1,
            if to.0 * to.1 > from.0 * from.1 { "expand" } else { "shrink" }
        );
        table.row(vec![
            n.to_string(),
            transition.clone(),
            format!("{sched:.2}"),
            format!("{naive:.2}"),
            format!("{:.2}x", naive / sched),
        ]);
        rows.push(Row {
            n,
            transition,
            scheduled_s: sched,
            naive_s: naive,
            ratio: naive / sched,
        });
    }
    table.print();
    println!(
        "\nReading: shrink transitions without the schedule pay receiver incast\n\
         (many simultaneous senders per destination); the circulant schedule's\n\
         per-step permutations keep every endpoint at concurrency 1."
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows);
    }
    reshape_bench::flush_telemetry();
}
