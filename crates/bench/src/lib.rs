//! # reshape-bench — the experiment harness
//!
//! One binary per table/figure of the ReSHAPE paper's evaluation (§4):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table2` | Table 2 — processor configurations per problem size |
//! | `fig2a`  | Figure 2(a) — LU iteration time vs processors |
//! | `fig2b`  | Figure 2(b) — redistribution overhead per expansion |
//! | `fig3a`  | Figure 3(a) — LU-12000 resize trajectory table |
//! | `fig3b`  | Figure 3(b) — static vs checkpoint vs ReSHAPE per app |
//! | `fig4`   | Figure 4 + Table 4 — workload 1 |
//! | `fig5`   | Figure 5 + Table 5 — workload 2 |
//!
//! Each binary prints the paper-comparable rows/series to stdout and, when
//! `--json <path>` is given, writes the raw data as JSON for plotting.
//! Criterion microbenchmarks of the runtime library itself live under
//! `benches/`.

use std::io::Write as _;

/// Minimal fixed-width table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |ws: &[usize]| {
            let total: usize = ws.iter().sum::<usize>() + 3 * ws.len() + 1;
            "-".repeat(total)
        };
        println!("{}", line(&widths));
        print!("|");
        for (h, w) in self.headers.iter().zip(&widths) {
            print!(" {h:<w$} |");
        }
        println!();
        println!("{}", line(&widths));
        for row in &self.rows {
            print!("|");
            for (c, w) in row.iter().zip(&widths) {
                print!(" {c:>w$} |");
            }
            println!();
        }
        println!("{}", line(&widths));
    }
}

/// Honor a `--telemetry` flag: turns on text-mode telemetry for this
/// process (an explicit `RESHAPE_TELEMETRY` setting wins). Call first
/// thing in a bench binary's `main` so the run is recorded.
pub fn telemetry_from_args() {
    if std::env::args().any(|a| a == "--telemetry")
        && reshape_telemetry::mode() == reshape_telemetry::Mode::Off
    {
        reshape_telemetry::set_mode(reshape_telemetry::Mode::Text);
    }
}

/// End-of-run telemetry dump to `RESHAPE_TELEMETRY_PATH` or stderr
/// (no-op when telemetry is off), plus the perfbase sink flush: headline
/// numbers recorded via [`record_metric`] land in `BENCH_<area>.json`
/// files under `PERFBASE_OUT` when that variable is set. Call last in a
/// bench binary's `main`.
pub fn flush_telemetry() {
    reshape_telemetry::flush();
    reshape_perfbase::flush_sink_env();
}

/// Report one headline measurement into the perfbase sink so every bench
/// binary feeds the same `BENCH_<area>.json` trajectory format that
/// `perfbase run` produces (see `bin/perfbase`). Free when `PERFBASE_OUT`
/// is unset beyond a map insert.
pub fn record_metric(area: &str, name: &str, unit: &str, kind: reshape_perfbase::MetricKind, value: f64) {
    reshape_perfbase::sink_metric(area, name, unit, kind, value);
}

/// Parse `--json <path>` from argv; returns the path if present.
pub fn json_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Write a serializable value as pretty JSON.
pub fn write_json<T: serde::Serialize>(path: &std::path::Path, value: &T) {
    let file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    let mut w = std::io::BufWriter::new(file);
    serde_json::to_writer_pretty(&mut w, value).expect("serialize results");
    w.flush().expect("flush results");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(vec!["a", "bbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        t.print(); // smoke test: must not panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
