//! Benchmarks of the scheduling machinery: the policy state machine, the
//! full paper-scale workload simulations, and the per-figure computations.

use criterion::{criterion_group, criterion_main, Criterion};
use reshape_clustersim::{fig3a_job, workload1, workload2, ClusterSim, MachineParams};
use reshape_core::{JobSpec, ProcessorConfig, QueuePolicy, SchedulerCore, TopologyPref};

fn bench_resize_point_throughput(c: &mut Criterion) {
    c.bench_function("scheduler_core/resize_point", |b| {
        let mut core = SchedulerCore::new(64, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "LU",
            TopologyPref::Grid { problem_size: 12000 },
            ProcessorConfig::new(1, 2),
            1_000_000,
        );
        let (job, _) = core.submit(spec, 0.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            std::hint::black_box(core.resize_point(job, 100.0, 0.0, t));
        });
    });
}

fn bench_submit_cycle(c: &mut Criterion) {
    c.bench_function("scheduler_core/submit_finish_cycle", |b| {
        let mut core = SchedulerCore::new(64, QueuePolicy::Backfill);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            let spec = JobSpec::new(
                "J",
                TopologyPref::Grid { problem_size: 8000 },
                ProcessorConfig::new(2, 2),
                10,
            );
            let (id, _) = core.submit(spec, t);
            std::hint::black_box(core.on_finished(id, t + 0.5));
        });
    });
}

fn bench_workload_sims(c: &mut Criterion) {
    let machine = MachineParams::system_x();
    c.bench_function("clustersim/workload1", |b| {
        let w = workload1();
        let sim = ClusterSim::new(w.total_procs, machine);
        b.iter(|| std::hint::black_box(sim.run(&w.jobs)));
    });
    c.bench_function("clustersim/workload2", |b| {
        let w = workload2();
        let sim = ClusterSim::new(w.total_procs, machine);
        b.iter(|| std::hint::black_box(sim.run(&w.jobs)));
    });
    c.bench_function("clustersim/fig3a", |b| {
        let sim = ClusterSim::new(36, machine);
        let jobs = [fig3a_job()];
        b.iter(|| std::hint::black_box(sim.run(&jobs)));
    });
}

criterion_group!(
    benches,
    bench_resize_point_throughput,
    bench_submit_cycle,
    bench_workload_sims
);
criterion_main!(benches);
