//! Microbenchmarks of the redistribution engine: schedule construction,
//! analytic evaluation, real data movement through the simulated fabric,
//! and the checkpoint baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_mpisim::{NetModel, Universe};
use reshape_redist::{
    checkpoint_redistribute, evaluate_2d, plan_2d, redistribute_2d, CheckpointParams,
};

fn bench_plan_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_2d");
    for &(n, nb) in &[(8000usize, 100usize), (12000, 100), (24000, 100)] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let src = Descriptor::square(n, nb, 2, 2);
            let dst = Descriptor::square(n, nb, 4, 5);
            b.iter(|| plan_2d(std::hint::black_box(src), std::hint::black_box(dst)));
        });
    }
    g.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let src = Descriptor::square(24000, 100, 4, 4);
    let dst = Descriptor::square(24000, 100, 5, 5);
    let plan = plan_2d(src, dst);
    let net = NetModel::gigabit_ethernet();
    c.bench_function("evaluate_2d/24000_16to25", |b| {
        b.iter(|| evaluate_2d(std::hint::black_box(&plan), 8, &net))
    });
}

fn bench_real_redistribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("redistribute_real");
    g.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                Universe::new(8, 1, NetModel::ideal())
                    .launch(8, None, "bench", move |comm| {
                        let src_d = Descriptor::square(n, 16, 2, 2);
                        let dst_d = Descriptor::square(n, 16, 2, 4);
                        let me = comm.rank();
                        let src = (me < 4).then(|| {
                            DistMatrix::from_fn(src_d, me / 2, me % 2, |i, j| (i + j) as f64)
                        });
                        let plan = plan_2d(src_d, dst_d);
                        std::hint::black_box(redistribute_2d(&comm, &plan, src.as_ref()));
                    })
                    .join_ok();
            });
        });
    }
    g.finish();
}

fn bench_checkpoint_vs_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist_vs_checkpoint_512");
    g.sample_size(10);
    let n = 512usize;
    g.bench_function("schedule", |b| {
        b.iter(|| {
            Universe::new(8, 1, NetModel::ideal())
                .launch(8, None, "rs", move |comm| {
                    let src_d = Descriptor::square(n, 16, 2, 2);
                    let dst_d = Descriptor::square(n, 16, 2, 4);
                    let me = comm.rank();
                    let src = (me < 4)
                        .then(|| DistMatrix::from_fn(src_d, me / 2, me % 2, |i, j| (i + j) as f64));
                    std::hint::black_box(redistribute_2d(
                        &comm,
                        &plan_2d(src_d, dst_d),
                        src.as_ref(),
                    ));
                })
                .join_ok();
        });
    });
    g.bench_function("checkpoint", |b| {
        b.iter(|| {
            Universe::new(8, 1, NetModel::ideal())
                .launch(8, None, "ck", move |comm| {
                    let src_d = Descriptor::square(n, 16, 2, 2);
                    let dst_d = Descriptor::square(n, 16, 2, 4);
                    let me = comm.rank();
                    let src = (me < 4)
                        .then(|| DistMatrix::from_fn(src_d, me / 2, me % 2, |i, j| (i + j) as f64));
                    std::hint::black_box(checkpoint_redistribute(
                        &comm,
                        src_d,
                        dst_d,
                        src.as_ref(),
                        &CheckpointParams::default(),
                        None,
                    ));
                })
                .join_ok();
        });
    });
    g.finish();
}

fn bench_general_planner(c: &mut Criterion) {
    use reshape_redist::plan_general_1d;
    let mut g = c.benchmark_group("plan_general_1d");
    // Block-size-changing plans exercising the Konig edge coloring.
    for &(n, b1, p, b2, q) in &[
        (100_000usize, 100usize, 8usize, 250usize, 12usize),
        (1_000_000, 1000, 16, 750, 20),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_{b1}x{p}_to_{b2}x{q}")),
            &n,
            |bch, _| {
                bch.iter(|| {
                    std::hint::black_box(plan_general_1d(n, b1, p, b2, q));
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_generation,
    bench_evaluation,
    bench_real_redistribution,
    bench_checkpoint_vs_schedule,
    bench_general_planner
);
criterion_main!(benches);
