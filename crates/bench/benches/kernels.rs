//! Microbenchmarks of the distributed numerical kernels (the paper's
//! workload applications) against their sequential references.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reshape_apps::{fft, jacobi, lu, mm, seq};
use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_grid::GridContext;
use reshape_mpisim::{NetModel, Universe};

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    g.sample_size(10);
    for &n in &[128usize, 256] {
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |b, &n| {
            let a0 = seq::test_matrix(n, 1);
            b.iter(|| {
                let mut a = a0.clone();
                seq::lu_nopivot(&mut a, n);
                std::hint::black_box(a);
            });
        });
        g.bench_with_input(BenchmarkId::new("dist_2x2", n), &n, |b, &n| {
            b.iter(|| {
                Universe::new(4, 1, NetModel::ideal())
                    .launch(4, None, "lu", move |comm| {
                        let grid = GridContext::new(&comm, 2, 2);
                        let d = Descriptor::square(n, 16, 2, 2);
                        let f = reshape_apps::dominant_elem(n);
                        let mut a = DistMatrix::from_fn(d, grid.myrow(), grid.mycol(), f);
                        lu::lu_factorize(&grid, &mut a);
                        std::hint::black_box(a.local_data().len());
                    })
                    .join_ok();
            });
        });
    }
    g.finish();
}

fn bench_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("summa");
    g.sample_size(10);
    let n = 192usize;
    g.bench_function("dist_2x3", |b| {
        b.iter(|| {
            Universe::new(6, 1, NetModel::ideal())
                .launch(6, None, "mm", move |comm| {
                    let grid = GridContext::new(&comm, 2, 3);
                    let d = Descriptor::square(n, 16, 2, 3);
                    let f = reshape_apps::dominant_elem(n);
                    let a = DistMatrix::from_fn(d, grid.myrow(), grid.mycol(), &f);
                    let bm = DistMatrix::from_fn(d, grid.myrow(), grid.mycol(), &f);
                    let mut cm = DistMatrix::new(d, grid.myrow(), grid.mycol());
                    mm::summa(&grid, &a, &bm, &mut cm);
                    std::hint::black_box(cm.local_data().len());
                })
                .join_ok();
        });
    });
    g.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_sweep");
    g.sample_size(10);
    let n = 512usize;
    g.bench_function("dist_1x4", |b| {
        b.iter(|| {
            Universe::new(4, 1, NetModel::ideal())
                .launch(4, None, "jacobi", move |comm| {
                    let grid = GridContext::new(&comm, 1, 4);
                    let f = reshape_apps::dominant_elem(n);
                    let a_desc = Descriptor::new(n, n, n, 16, 1, 4);
                    let v_desc = Descriptor::new(1, n, 1, 16, 1, 4);
                    let a = DistMatrix::from_fn(a_desc, 0, grid.mycol(), f);
                    let bb = DistMatrix::from_fn(v_desc, 0, grid.mycol(), |_, j| j as f64);
                    let mut x = DistMatrix::new(v_desc, 0, grid.mycol());
                    for _ in 0..5 {
                        jacobi::jacobi_sweep(&grid, &a, &mut x, &bb);
                    }
                    std::hint::black_box(x.local_data().len());
                })
                .join_ok();
        });
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft2d");
    g.sample_size(10);
    let n = 256usize;
    g.bench_function("dist_1x4", |b| {
        b.iter(|| {
            Universe::new(4, 1, NetModel::ideal())
                .launch(4, None, "fft", move |comm| {
                    let grid = GridContext::new(&comm, 1, 4);
                    let d = Descriptor::new(n, n, n, 16, 1, 4);
                    let mut re =
                        DistMatrix::from_fn(d, 0, grid.mycol(), |i, j| ((i + j) % 17) as f64);
                    let mut im = DistMatrix::new(d, 0, grid.mycol());
                    fft::fft2d(&grid, &mut re, &mut im, false);
                    std::hint::black_box(re.local_data().len());
                })
                .join_ok();
        });
    });
    g.bench_function("seq_1d_4096", |b| {
        let re0: Vec<f64> = (0..4096).map(|i| (i % 13) as f64).collect();
        b.iter(|| {
            let mut re = re0.clone();
            let mut im = vec![0.0; 4096];
            seq::fft_inplace(&mut re, &mut im, false);
            std::hint::black_box(re[0]);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lu, bench_mm, bench_jacobi, bench_fft);
criterion_main!(benches);
