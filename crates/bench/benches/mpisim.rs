//! Microbenchmarks of the simulated MPI substrate itself: point-to-point
//! throughput, collectives, communicator management, dynamic spawning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reshape_mpisim::{NetModel, ReduceOp, Universe};

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_ping_pong");
    g.sample_size(10);
    for &len in &[1usize << 10, 1 << 16, 1 << 20] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                Universe::new(2, 1, NetModel::ideal())
                    .launch(2, None, "pp", move |comm| {
                        let data = vec![1.0f64; len / 8];
                        for _ in 0..16 {
                            if comm.rank() == 0 {
                                comm.send(1, 1, &data);
                                let _: Vec<f64> = comm.recv(1, 2);
                            } else {
                                let v: Vec<f64> = comm.recv(0, 1);
                                comm.send(0, 2, &v);
                            }
                        }
                    })
                    .join_ok();
            });
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_8_ranks");
    g.sample_size(10);
    g.bench_function("bcast_64k", |b| {
        b.iter(|| {
            Universe::new(8, 1, NetModel::ideal())
                .launch(8, None, "bc", |comm| {
                    let data = if comm.rank() == 0 {
                        vec![1.0f64; 8192]
                    } else {
                        vec![]
                    };
                    for _ in 0..8 {
                        std::hint::black_box(comm.bcast(0, &data));
                    }
                })
                .join_ok();
        });
    });
    g.bench_function("allreduce_8k", |b| {
        b.iter(|| {
            Universe::new(8, 1, NetModel::ideal())
                .launch(8, None, "ar", |comm| {
                    let data = vec![comm.rank() as f64; 1024];
                    for _ in 0..8 {
                        std::hint::black_box(comm.allreduce(ReduceOp::Sum, &data));
                    }
                })
                .join_ok();
        });
    });
    g.bench_function("alltoallv_8x8k", |b| {
        b.iter(|| {
            Universe::new(8, 1, NetModel::ideal())
                .launch(8, None, "a2a", |comm| {
                    let parts: Vec<Vec<f64>> =
                        (0..8).map(|d| vec![d as f64; 1024]).collect();
                    for _ in 0..4 {
                        std::hint::black_box(comm.alltoallv(&parts));
                    }
                })
                .join_ok();
        });
    });
    g.finish();
}

fn bench_spawn_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_process_management");
    g.sample_size(10);
    g.bench_function("spawn_merge_4_plus_4", |b| {
        b.iter(|| {
            let uni = Universe::new(8, 1, NetModel::ideal());
            uni.launch(4, None, "sm", |comm| {
                let merged = comm.spawn_merge(4, None, "kids", |ctx| {
                    ctx.parent.merge().barrier();
                });
                merged.barrier();
            })
            .join_ok();
            uni.join_spawned();
        });
    });
    g.bench_function("comm_split_16", |b| {
        b.iter(|| {
            Universe::new(16, 1, NetModel::ideal())
                .launch(16, None, "sp", |comm| {
                    for round in 0..4u32 {
                        let color = (comm.rank() as u32 + round) % 4;
                        std::hint::black_box(comm.split(Some(color), comm.rank() as i64));
                    }
                })
                .join_ok();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_spawn_merge);
criterion_main!(benches);
