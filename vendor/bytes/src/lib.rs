//! Offline stand-in for the `bytes` crate: [`Bytes`] is a cheaply cloneable,
//! immutable view into a reference-counted buffer. Cloning and slicing are
//! O(1) and never copy, matching the real crate's behavior on the operations
//! the workspace uses (`new`, `from`, `from_static`, `copy_from_slice`,
//! `slice`, `Deref`).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation of note).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Borrow a static slice. The shim copies it once into a shared buffer;
    /// semantically identical (immutable, 'static lifetime).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// O(1) sub-view sharing the same backing buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice {start}..{end} out of bounds for {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(Arc::as_ptr(&b.data), Arc::as_ptr(&s2.data));
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
    }
}
