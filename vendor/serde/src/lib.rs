//! Offline stand-in for `serde`.
//!
//! This workspace builds with no crates.io access, so external dependencies
//! are vendored as minimal API-compatible shims under `vendor/`. Real serde
//! abstracts over serializers; everything this workspace does funnels into
//! JSON, so the shim collapses the model to a single [`Value`] tree:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc-macro, supporting the attribute subset the
//!   workspace uses: field `default`, `default = "path"`, `rename`, and
//!   container `tag = "..."` + `rename_all = "snake_case"` on enums.
//!
//! The `serde_json` shim layers JSON text parsing/printing on top (the
//! grammar lives here, in [`json`], so map-key encoding can reuse it).

use std::collections::{BTreeMap, HashMap, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A JSON-shaped value tree. Object fields keep insertion order so emitted
/// JSON is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` on non-objects), like serde_json's.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| __get(o, key))
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&json::to_string_compact(self))
    }
}

/// Derive-internal helper: first object entry with the given key.
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of i64 range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::msg(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

/// JSON object keys must be strings. String-like keys pass through; any
/// other key type is encoded as its compact JSON text (real serde_json
/// rejects such maps — the shim round-trips them instead, which is strictly
/// more permissive and internally consistent).
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        other => json::to_string_compact(&other),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    let v = json::parse(s)?;
    K::from_value(&v)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by encoded key so output is deterministic across hasher
        // states (BTreeMap-equivalent wire form).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got {} elements",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn map_with_non_string_keys_round_trips() {
        let mut m: HashMap<(u64, u64), f64> = HashMap::new();
        m.insert((2, 3), 1.5);
        m.insert((4, 5), 2.5);
        let v = m.to_value();
        let back: HashMap<(u64, u64), f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_tuple() {
        let v = Some((1.0f64, 2usize)).to_value();
        let back: Option<(f64, usize)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, Some((1.0, 2)));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }
}
