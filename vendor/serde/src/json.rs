//! JSON text grammar: parsing into [`Value`](crate::Value) and printing
//! (compact and pretty). Lives in the `serde` shim so map-key encoding can
//! use it; the `serde_json` shim re-exports it behind the familiar API.

use crate::{Error, Value};

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// Compact JSON (no whitespace), serde_json `to_string` style.
pub fn to_string_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty JSON with 2-space indentation, serde_json `to_string_pretty` style.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and prints
                // a decimal point for integral values ("1.0"), matching
                // serde_json's output closely enough to re-parse exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                // serde_json errors on non-finite floats; emitting null keeps
                // telemetry streams parseable instead of aborting a run.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON document"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!(
                "invalid JSON literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON document"))?
        {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' in array, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(fields)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg("invalid low surrogate in JSON string"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "invalid escape '\\{}' in JSON string",
                            other as char
                        )))
                    }
                },
                b => {
                    // Re-decode UTF-8: back up and take the full char.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::msg("invalid UTF-8 in JSON string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in unicode escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number '{text}' in JSON")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny"},"d":""}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string_compact(&v), text);
    }

    #[test]
    fn float_round_trip_shortest() {
        let v = Value::F64(0.1);
        let s = to_string_compact(&v);
        assert_eq!(s, "0.1");
        assert_eq!(parse(&s).unwrap(), Value::F64(0.1));
        assert_eq!(to_string_compact(&Value::F64(2.0)), "2.0");
    }

    #[test]
    fn integer_types_preserved() {
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-42").unwrap(), Value::I64(-42));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse(r#""é😀""#).unwrap(),
            Value::Str("é😀".to_string())
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{,}").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = parse(r#"{"a":[1],"b":2}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"), "{pretty}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
