//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external crates it uses are vendored as minimal,
//! API-compatible shims (see `vendor/` in the repository root). Only the
//! surface the workspace actually uses is provided.
//!
//! Semantics matched from parking_lot:
//! * `lock()` returns the guard directly (no `Result`);
//! * a mutex is **never poisoned** — if a thread panics while holding the
//!   lock, the next `lock()` succeeds and sees the data as-is. The mpisim
//!   failure model relies on this: a simulated rank that panics inside a
//!   collective must not wedge the router for surviving ranks.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's no-poisoning `lock()`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with the same no-poisoning contract.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning: lock still usable");
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
