//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// Generate a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range_u64(self.size.start as u64, self.size.end as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
