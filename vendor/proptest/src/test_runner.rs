//! Run configuration.

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of test cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default; PROPTEST_CASES overrides.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}
