//! Strategies: descriptions of how to generate a random value of some type.

use crate::TestRng;

pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $via:ident : $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(self.start as $wide, self.end as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // end+1 cannot overflow the wider arithmetic type.
                rng.$via(*self.start() as $wide, *self.end() as $wide + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(
    u8 => gen_range_u64: u64,
    u16 => gen_range_u64: u64,
    u32 => gen_range_u64: u64,
    usize => gen_range_u64: u64,
    i8 => gen_range_i64: i64,
    i16 => gen_range_i64: i64,
    i32 => gen_range_i64: i64
);

impl Strategy for std::ops::Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.gen_range_i64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range_u64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.gen_f64() * (self.end - self.start) as f64) as f32
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.gen_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: std::fmt::Debug, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Helper for `prop_oneof!`: erase a strategy's concrete type.
pub fn union_box<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
where
    T: std::fmt::Debug,
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies (the engine behind `prop_oneof!`).
pub struct Union<T: std::fmt::Debug> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: std::fmt::Debug> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range_u64(0, self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}
