//! Offline stand-in for `proptest`: deterministic seeded property testing
//! with the API subset this workspace uses — the `proptest!` macro, range
//! and tuple strategies, `prop_map`, `prop_oneof!`, `collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — on failure the exact failing inputs, case number,
//!   and seed are printed instead;
//! * values are drawn uniformly from their strategy (no bias toward edge
//!   cases);
//! * the base seed is fixed (deterministic runs); set `PROPTEST_SEED` to
//!   explore a different universe or reproduce a printed failure.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// SplitMix64: tiny, fast, and excellent dispersion for test-case seeding.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive the RNG for one test case from the run seed and case index.
    pub fn for_case(seed: u64, case: u32) -> Self {
        let mut rng = TestRng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        rng.next_u64(); // decorrelate nearby seeds
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. `hi > lo` required.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        let off = ((self.next_u64() as u128 * span) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The seed for this process: `PROPTEST_SEED` env var if set, else a fixed
/// constant (fully deterministic CI).
pub fn run_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE11_D00D_F00D)
}

/// The `proptest! { ... }` macro: runs each property `cases` times with
/// deterministically seeded inputs, printing the failing inputs and seed on
/// panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::run_seed();
                for case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(seed, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __desc = {
                        let mut parts: Vec<String> = Vec::new();
                        $(parts.push(format!(concat!(stringify!($arg), " = {:?}"), $arg));)*
                        parts.join(", ")
                    };
                    let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || { $body }
                    ));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest: property {} failed at case {}/{} with inputs: {}\n\
                             proptest: reproduce with PROPTEST_SEED={}",
                            stringify!($name), case, cfg.cases, __desc, seed
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::union_box($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in -5i64..5, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0usize..3).prop_map(|n| n * 100),
            (5usize..8).prop_map(|n| n),
        ]) {
            prop_assert!(x == 0 || x == 100 || x == 200 || (5..8).contains(&x));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = crate::TestRng::for_case(42, 7);
        let mut b = crate::TestRng::for_case(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
