//! Offline stand-in for `crossbeam-channel` (see `vendor/` README note in
//! each shim's crate docs): an unbounded MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`, with crossbeam's cloneable `Sender` *and*
//! `Receiver` and its disconnection semantics:
//!
//! * `recv` blocks until a message arrives or every `Sender` is dropped;
//! * `send` fails only when every `Receiver` is dropped;
//! * cloned receivers *share* one queue (each message is delivered once).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back like crossbeam's.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(msg));
        }
        self.inner.lock().push_back(msg);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake every blocked receiver so it can
            // observe the disconnection.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = match self.inner.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.lock();
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = match self.inner.ready.wait_timeout(q, deadline - now) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            q = guard;
            if res.timed_out() && q.is_empty() {
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_delivery_is_exactly_once() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        let rx2 = rx.clone();
        let mut got: Vec<u32> = (0..50).map(|_| rx.recv().unwrap()).collect();
        got.extend((0..50).map(|_| rx2.recv().unwrap()));
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }
}
