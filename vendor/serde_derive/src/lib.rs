//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` generating impls of the vendored `serde` shim's
//! value-tree traits. Written directly against `proc_macro` token trees (no
//! syn/quote in the offline environment); generated code is assembled as
//! source text and re-parsed.
//!
//! Supported input shapes — exactly what the workspace uses:
//! * structs with named fields;
//! * one-field tuple structs (newtypes);
//! * enums of unit, newtype, and struct variants.
//!
//! Supported attributes:
//! * field `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(rename = "...")]` (combinable, e.g. `default, rename = "x"`);
//! * container `#[serde(tag = "...", rename_all = "snake_case")]`
//!   (internally tagged enums);
//! * `Option<T>` fields are optional without an attribute, as in serde.
//!
//! Anything outside this subset fails loudly at expansion time rather than
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    tag: Option<String>,
    rename_all_snake: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Field {
    ident: String,
    /// Wire name after `rename`.
    key: String,
    is_option: bool,
    default: DefaultAttr,
}

enum DefaultAttr {
    No,
    Std,
    Path(String),
}

struct Variant {
    ident: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct SerdeArgs {
    default: DefaultAttr,
    rename: Option<String>,
    tag: Option<String>,
    rename_all_snake: bool,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde shim derive: tuple struct `{name}` has {n} fields; only \
                         newtypes (1 field) are supported"
                    );
                }
                Kind::NewtypeStruct
            }
            other => panic!("serde shim derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    Item {
        name,
        tag: container.tag,
        rename_all_snake: container.rename_all_snake,
        kind,
    }
}

/// Consume leading attributes, returning merged serde arguments.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeArgs {
    let mut args = SerdeArgs {
        default: DefaultAttr::No,
        rename: None,
        tag: None,
        rename_all_snake: false,
    };
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let TokenTree::Group(g) = &tokens[*pos] else {
            panic!("serde shim derive: malformed attribute");
        };
        *pos += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let Some(TokenTree::Ident(attr_name)) = inner.first() else {
            continue;
        };
        if attr_name.to_string() != "serde" {
            continue; // doc comments, #[default], other derives' attrs
        }
        let Some(TokenTree::Group(list)) = inner.get(1) else {
            continue;
        };
        parse_serde_args(list.stream(), &mut args);
    }
    args
}

/// Parse `default`, `default = "path"`, `rename = "x"`, `tag = "type"`,
/// `rename_all = "snake_case"` from inside `#[serde(...)]`.
fn parse_serde_args(stream: TokenStream, args: &mut SerdeArgs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!("serde shim derive: unsupported serde attribute syntax: {:?}", tokens[i]);
        };
        let key = id.to_string();
        i += 1;
        let value = if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let TokenTree::Literal(lit) = &tokens[i] else {
                panic!("serde shim derive: expected string literal after `{key} =`");
            };
            i += 1;
            Some(unquote(&lit.to_string()))
        } else {
            None
        };
        match (key.as_str(), value) {
            ("default", None) => args.default = DefaultAttr::Std,
            ("default", Some(path)) => args.default = DefaultAttr::Path(path),
            ("rename", Some(name)) => args.rename = Some(name),
            ("tag", Some(tag)) => args.tag = Some(tag),
            ("rename_all", Some(style)) => {
                if style != "snake_case" {
                    panic!("serde shim derive: only rename_all = \"snake_case\" is supported");
                }
                args.rename_all_snake = true;
            }
            (other, _) => panic!("serde shim derive: unsupported serde attribute `{other}`"),
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let ident = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde shim derive: expected `:` after field `{ident}`, found {other:?}"),
        }
        // Collect the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        let mut first_ty_token: Option<String> = None;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            if first_ty_token.is_none() {
                first_ty_token = Some(tokens[pos].to_string());
            }
            pos += 1;
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        let is_option = first_ty_token.as_deref() == Some("Option");
        let key = attrs.rename.clone().unwrap_or_else(|| ident.clone());
        fields.push(Field {
            ident,
            key,
            is_option,
            default: attrs.default,
        });
    }
    fields
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut any = false;
    let mut commas = 0usize;
    for t in stream {
        any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _attrs = parse_attrs(&tokens, &mut pos); // doc / #[default]; no serde attrs on variants here
        let ident = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde shim derive: tuple variant `{ident}` has {n} fields; only \
                         newtype variants are supported"
                    );
                }
                pos += 1;
                VariantFields::Newtype
            }
            _ => VariantFields::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { ident, fields });
    }
    variants
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// serde's RenameRule::SnakeCase: lowercase with `_` before each interior
/// uppercase run start.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((\"{key}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{ident})));\n",
                    key = f.key,
                    ident = f.ident
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Kind::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.ident;
                let wire = if item.rename_all_snake {
                    snake_case(vname)
                } else {
                    vname.clone()
                };
                let arm = match (&v.fields, &item.tag) {
                    (VariantFields::Unit, None) => format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{wire}\".to_string()),\n"
                    ),
                    (VariantFields::Unit, Some(tag)) => format!(
                        "{name}::{vname} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), \
                         ::serde::Value::Str(\"{wire}\".to_string()))]),\n"
                    ),
                    (VariantFields::Newtype, None) => format!(
                        "{name}::{vname}(__v0) => ::serde::Value::Object(vec![\
                         (\"{wire}\".to_string(), ::serde::Serialize::to_value(__v0))]),\n"
                    ),
                    (VariantFields::Newtype, Some(_)) => panic!(
                        "serde shim derive: newtype variant `{vname}` in internally tagged enum \
                         is not supported"
                    ),
                    (VariantFields::Named(fields), tag) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::new();
                        inner.push_str(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "__fields.push((\"{tag}\".to_string(), \
                                 ::serde::Value::Str(\"{wire}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((\"{key}\".to_string(), \
                                 ::serde::Serialize::to_value({ident})));\n",
                                key = f.key,
                                ident = f.ident
                            ));
                        }
                        let payload = "::serde::Value::Object(__fields)".to_string();
                        let result = if tag.is_some() {
                            payload
                        } else {
                            format!(
                                "::serde::Value::Object(vec![(\"{wire}\".to_string(), {payload})])"
                            )
                        };
                        format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}{result}\n}}\n",
                            binds = binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// The expression filling one field of a struct (or struct variant) from
/// object `__obj`, honoring Option-ness and default attributes.
fn field_from_obj(owner: &str, f: &Field) -> String {
    let missing = match (&f.default, f.is_option) {
        (DefaultAttr::Std, _) => "::std::default::Default::default()".to_string(),
        (DefaultAttr::Path(p), _) => format!("{p}()"),
        (DefaultAttr::No, true) => "::std::option::Option::None".to_string(),
        (DefaultAttr::No, false) => format!(
            "return ::std::result::Result::Err(::serde::Error::msg(\
             \"missing field `{key}` in {owner}\"))",
            key = f.key
        ),
    };
    format!(
        "match ::serde::__get(__obj, \"{key}\") {{\n\
         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         None => {missing},\n}}",
        key = f.key
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(format!(\"expected object for {name}, got {{__v:?}}\")))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{ident}: {expr},\n",
                    ident = f.ident,
                    expr = field_from_obj(name, f)
                ));
            }
            s.push_str("})");
            s
        }
        Kind::NewtypeStruct => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Enum(variants) => match &item.tag {
            Some(tag) => gen_de_tagged_enum(item, variants, tag),
            None => gen_de_untagged_enum(item, variants),
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_de_tagged_enum(item: &Item, variants: &[Variant], tag: &str) -> String {
    let name = &item.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.ident;
        let wire = if item.rename_all_snake {
            snake_case(vname)
        } else {
            vname.clone()
        };
        match &v.fields {
            VariantFields::Unit => {
                arms.push_str(&format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantFields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{ident}: {expr},\n",
                        ident = f.ident,
                        expr = field_from_obj(&format!("{name}::{vname}"), f)
                    ));
                }
                arms.push_str(&format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n"
                ));
            }
            VariantFields::Newtype => panic!(
                "serde shim derive: newtype variant `{vname}` in internally tagged enum \
                 is not supported"
            ),
        }
    }
    format!(
        "let __obj = __v.as_object().ok_or_else(|| \
         ::serde::Error::msg(format!(\"expected object for {name}, got {{__v:?}}\")))?;\n\
         let __tag = ::serde::__get(__obj, \"{tag}\").and_then(::serde::Value::as_str)\
         .ok_or_else(|| ::serde::Error::msg(\"missing `{tag}` tag for {name}\"))?;\n\
         match __tag {{\n{arms}\
         other => ::std::result::Result::Err(::serde::Error::msg(format!(\
         \"unknown {name} variant `{{other}}`\"))),\n}}"
    )
}

fn gen_de_untagged_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vname = &v.ident;
        match &v.fields {
            VariantFields::Unit => {
                // Match the wire spelling first (mirrors the serializer's
                // rename_all handling), but keep accepting the raw ident so
                // pre-rename payloads still load.
                let wire = if item.rename_all_snake {
                    snake_case(vname)
                } else {
                    vname.clone()
                };
                if wire != *vname {
                    str_arms.push_str(&format!(
                        "\"{wire}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                str_arms.push_str(&format!(
                    "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantFields::Newtype => {
                obj_arms.push_str(&format!(
                    "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
                ));
            }
            VariantFields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{ident}: {expr},\n",
                        ident = f.ident,
                        expr = field_from_obj(&format!("{name}::{vname}"), f)
                    ));
                }
                obj_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::msg(\
                     \"expected object payload for {name}::{vname}\"))?;\n\
                     return ::std::result::Result::Ok({name}::{vname} {{\n{inits}}});\n}}\n"
                ));
            }
        }
    }
    format!(
        "if let ::serde::Value::Str(__s) = __v {{\n\
         match __s.as_str() {{\n{str_arms}\
         _ => {{}}\n}}\n}}\n\
         if let ::serde::Value::Object(__o) = __v {{\n\
         if __o.len() == 1 {{\n\
         let (__k, __inner) = &__o[0];\n\
         match __k.as_str() {{\n{obj_arms}\
         _ => {{}}\n}}\n}}\n}}\n\
         ::std::result::Result::Err(::serde::Error::msg(format!(\
         \"no {name} variant matches {{__v:?}}\")))"
    )
}
