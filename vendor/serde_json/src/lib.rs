//! Offline stand-in for `serde_json`, layered on the vendored `serde` shim:
//! the JSON grammar itself lives in `serde::json`; this crate provides the
//! familiar entry points (`to_string`, `from_str`, `to_writer_pretty`,
//! [`Value`], `json!`).

pub use serde::Error;
pub use serde::Value;

use serde::{json, Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(json::to_string_compact(&value.to_value()))
}

/// Serialize to pretty (2-space indented) JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(json::to_string_pretty(&value.to_value()))
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&json::parse(s)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize as pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let text = json::to_string_pretty(&value.to_value());
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(format!("write error: {e}")))
}

/// Serialize as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = json::to_string_compact(&value.to_value());
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(format!("write error: {e}")))
}

/// Build a [`Value`] from a JSON-ish literal. Supports the forms the
/// workspace uses: object literals with string keys, array literals, `null`,
/// and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($val:expr) => { $crate::to_value(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"type": "metrics", "n": 3u64, "nested": json!([1u8, 2u8])});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"type":"metrics","n":3,"nested":[1,2]}"#
        );
    }

    #[test]
    fn from_str_into_value() {
        let v: Value = from_str(r#"{"a": 1}"#).unwrap();
        assert!(v.get("a").is_some());
        assert!(v.get("b").is_none());
    }
}
