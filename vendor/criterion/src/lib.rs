//! Offline stand-in for `criterion`. Each benchmark closure is executed a
//! handful of times and its wall-clock time printed — enough for
//! `cargo bench -- --test` smoke runs in CI, with the same surface API
//! (`benchmark_group`, `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) as the real crate. No statistics, no reports.

use std::fmt::Display;
use std::time::Instant;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut run = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut run);
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: 0.0 };
    let start = Instant::now();
    f(&mut b);
    let total = start.elapsed().as_secs_f64();
    println!("bench {label:<48} inner {:>10.6}s  total {total:>10.6}s", b.elapsed);
}

pub struct Bencher {
    elapsed: f64,
}

impl Bencher {
    /// Run the routine once (a smoke run, not a measurement campaign).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed().as_secs_f64();
        std::hint::black_box(&out);
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Re-export used by some benches as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Flags like `--test` or `--bench` are accepted and ignored:
            // every run is a single-pass smoke run.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| {
                hits += 1;
                n * 2
            })
        });
        group.finish();
        assert_eq!(hits, 1);
    }
}
