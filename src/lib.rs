//! # reshape — umbrella crate for the ReSHAPE reproduction
//!
//! Re-exports the public API of every layer so examples and downstream users
//! can depend on a single crate. See the workspace README for the
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! ## End-to-end example
//!
//! Submit a resizable LU job to the framework on a simulated cluster and
//! watch the Remap Scheduler grow it:
//!
//! ```
//! use reshape::core::runtime::ReshapeRuntime;
//! use reshape::core::{JobSpec, JobState, ProcessorConfig, QueuePolicy, TopologyPref};
//! use reshape::mpisim::{NetModel, Universe};
//! use std::time::Duration;
//!
//! let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
//! let spec = JobSpec::new(
//!     "LU",
//!     TopologyPref::Grid { problem_size: 24 },
//!     ProcessorConfig::new(1, 2),
//!     5,
//! );
//! let job = runtime.submit(spec, reshape::apps::lu_app(24, 4, 1.0e6));
//! let state = runtime.wait_for(job, Duration::from_secs(60)).unwrap();
//! assert!(matches!(state, JobState::Finished { .. }));
//! // The profiler saw it grow beyond its initial 2 processors.
//! let core = runtime.core().lock();
//! assert!(core.profiler().profile(job).unwrap().visited().len() > 1);
//! ```

pub use reshape_apps as apps;
pub use reshape_blockcyclic as blockcyclic;
pub use reshape_clustersim as clustersim;
pub use reshape_core as core;
pub use reshape_grid as grid;
pub use reshape_mpisim as mpisim;
pub use reshape_redist as redist;
pub use reshape_telemetry as telemetry;
