//! End-to-end integration tests: every paper workload runs as a genuinely
//! resizable application through the full stack (runtime scheduler thread →
//! resize library → spawn/merge → redistribution → distributed kernels).

use std::time::Duration;

use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{JobSpec, JobState, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn finish(
    runtime: &ReshapeRuntime,
    job: reshape::core::JobId,
) -> (JobState, Vec<ProcessorConfig>) {
    let state = runtime.wait_for(job, Duration::from_secs(120)).unwrap();
    let core = runtime.core().lock();
    let visited = core
        .profiler()
        .profile(job)
        .map(|p| p.visited().to_vec())
        .unwrap_or_default();
    (state, visited)
}

#[test]
fn resizable_lu_grows_and_finishes() {
    let runtime = ReshapeRuntime::new(Universe::new(16, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "LU",
        TopologyPref::Grid { problem_size: 48 },
        ProcessorConfig::new(1, 2),
        8,
    );
    let job = runtime.submit(spec, reshape::apps::lu_app(48, 4, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert!(visited.len() >= 3, "LU should expand repeatedly: {visited:?}");
    assert_eq!(runtime.core().lock().idle_procs(), 16);
}

#[test]
fn resizable_mm_grows_and_finishes() {
    let runtime = ReshapeRuntime::new(Universe::new(9, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "MM",
        TopologyPref::Grid { problem_size: 24 },
        ProcessorConfig::new(1, 2),
        6,
    );
    let job = runtime.submit(spec, reshape::apps::mm_app(24, 4, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert!(visited.len() >= 2, "{visited:?}");
}

#[test]
fn resizable_jacobi_state_survives_resizes() {
    // jacobi_app's iterate x persists across resizes; divergence would make
    // the run panic inside the solver's arithmetic or change convergence.
    let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "Jacobi",
        TopologyPref::Linear {
            problem_size: 32,
            even_only: true,
        },
        ProcessorConfig::linear(2),
        10,
    );
    let job = runtime.submit(spec, reshape::apps::jacobi_app(32, 4, 3, 1.0e5));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert!(visited.len() >= 2, "{visited:?}");
}

#[test]
fn resizable_fft_runs_on_power_of_two_counts() {
    let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "FFT",
        TopologyPref::Linear {
            problem_size: 32,
            even_only: true,
        },
        ProcessorConfig::linear(2),
        6,
    );
    let job = runtime.submit(spec, reshape::apps::fft_app(32, 4, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert!(!visited.is_empty());
}

#[test]
fn resizable_master_worker_has_no_data_to_move() {
    let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "MW",
        TopologyPref::AnyCount {
            min: 2,
            max: 8,
            step: 2,
        },
        ProcessorConfig::linear(2),
        6,
    );
    let job = runtime.submit(spec, reshape::apps::mw_app(200, 1e-4, 16));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert!(!visited.is_empty());
}

#[test]
fn two_jobs_share_a_small_cluster() {
    let runtime = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let mk = |name: &str| {
        JobSpec::new(
            name,
            TopologyPref::Grid { problem_size: 16 },
            ProcessorConfig::new(1, 2),
            4,
        )
    };
    let a = runtime.submit(mk("A"), reshape::apps::lu_app(16, 2, 1.0e6));
    let b = runtime.submit(mk("B"), reshape::apps::lu_app(16, 2, 1.0e6));
    assert!(matches!(
        runtime.wait_for(a, Duration::from_secs(120)).unwrap(),
        JobState::Finished { .. }
    ));
    assert!(matches!(
        runtime.wait_for(b, Duration::from_secs(120)).unwrap(),
        JobState::Finished { .. }
    ));
    assert_eq!(runtime.core().lock().idle_procs(), 4);
}

#[test]
fn backfill_lets_small_jobs_jump_blocked_queue() {
    let runtime = ReshapeRuntime::new(
        Universe::new(4, 1, NetModel::ideal()),
        QueuePolicy::Backfill,
    );
    // Fill the cluster, then queue a 4-proc job (blocked) and a 2-proc job
    // (backfillable only if the big one can't run).
    let mk = |name: &str, rows: usize, cols: usize, iters: usize| {
        JobSpec::new(
            name,
            TopologyPref::Grid { problem_size: 16 },
            ProcessorConfig::new(rows, cols),
            iters,
        )
        .static_job()
    };
    let hog = runtime.submit(mk("hog", 2, 2, 8), reshape::apps::lu_app(16, 2, 1.0e6));
    let big = runtime.submit(mk("big", 2, 2, 2), reshape::apps::lu_app(16, 2, 1.0e6));
    let small = runtime.submit(mk("small", 1, 2, 2), reshape::apps::lu_app(16, 2, 1.0e6));
    for j in [hog, big, small] {
        assert!(matches!(
            runtime.wait_for(j, Duration::from_secs(120)).unwrap(),
            JobState::Finished { .. }
        ));
    }
}

#[test]
fn single_iteration_job_has_no_resize_points() {
    // One iteration means the loop ends before any resize point — the job
    // must finish cleanly at its initial size.
    let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "one-shot",
        TopologyPref::Grid { problem_size: 16 },
        ProcessorConfig::new(2, 2),
        1,
    );
    let job = runtime.submit(spec, reshape::apps::lu_app(16, 2, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    // The Performance Profiler only hears from jobs at resize points, and a
    // single-iteration job has none — faithful to the paper's design.
    assert!(visited.is_empty(), "{visited:?}");
    assert_eq!(runtime.core().lock().idle_procs(), 8);
}

#[test]
fn job_at_top_of_chain_cannot_expand() {
    // Problem size 8 on a 2x4 grid: the chain (…, 2x4, 4x4, 4x8, 8x8) is
    // capped by the 8-processor cluster, so the job holds its size.
    let runtime = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "maxed",
        TopologyPref::Grid { problem_size: 8 },
        ProcessorConfig::new(2, 4),
        4,
    );
    let job = runtime.submit(spec, reshape::apps::lu_app(8, 2, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    assert_eq!(visited, vec![ProcessorConfig::new(2, 4)]);
}

#[test]
fn high_priority_job_starts_before_earlier_submission() {
    // Fill the cluster with a static hog, queue a low- then a
    // high-priority job: the high one must run first.
    let runtime = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let mk = |name: &str, prio: u8| {
        JobSpec::new(
            name,
            TopologyPref::Grid { problem_size: 16 },
            ProcessorConfig::new(2, 2),
            3,
        )
        .static_job()
        .with_priority(prio)
    };
    let hog = runtime.submit(mk("hog", 0), reshape::apps::lu_app(16, 2, 1.0e6));
    let low = runtime.submit(mk("low", 0), reshape::apps::lu_app(16, 2, 1.0e6));
    let high = runtime.submit(mk("high", 7), reshape::apps::lu_app(16, 2, 1.0e6));
    for j in [hog, low, high] {
        assert!(matches!(
            runtime.wait_for(j, Duration::from_secs(120)).unwrap(),
            JobState::Finished { .. }
        ));
    }
    let core = runtime.core().lock();
    let started = |j| core.job(j).unwrap().started_at.unwrap();
    assert!(
        started(high) <= started(low),
        "high started {} after low {}",
        started(high),
        started(low)
    );
}

#[test]
fn phased_app_reprobes_in_real_mode() {
    // Phase 1 (iterations 0-4): sweet spot at 4 procs (more is worse).
    // Phase 2 (5+): bigger is strictly better. Without the phase-change
    // notification the phase-1 "expansion didn't help" verdict would pin
    // the job at 4 forever.
    use reshape::blockcyclic::{Descriptor, DistMatrix};
    use reshape::core::driver::AppDef;
    let runtime = ReshapeRuntime::new(Universe::new(12, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let n = 24usize;
    let app = AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 1.0)]
        },
        |grid, _mats, iter| {
            let p = grid.nprow() * grid.npcol();
            let t = if iter < 5 {
                // Light phase: flat beyond 4 processors.
                match p {
                    1 | 2 => 8.0 / p as f64,
                    4 => 3.0,
                    _ => 5.0,
                }
            } else {
                // Heavy phase: scales all the way up.
                200.0 / p as f64
            };
            grid.comm().advance(t);
        },
    )
    .with_phase_starts(vec![5]);
    let spec = JobSpec::new(
        "phased",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(1, 2),
        14,
    );
    let job = runtime.submit(spec, app);
    let state = runtime.wait_for(job, Duration::from_secs(120)).unwrap();
    assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
    let core = runtime.core().lock();
    let prof = core.profiler().profile(job).unwrap();
    // Post-reset history only contains phase-2 records, and the job grew
    // past its phase-1 sweet spot of 4 processors.
    let max_procs = prof
        .history()
        .iter()
        .map(|r| r.config.procs())
        .max()
        .unwrap();
    assert!(
        max_procs > 4,
        "heavy phase should re-expand past the old sweet spot: {:?}",
        prof.history()
    );
}

#[test]
fn churn_many_jobs_through_a_small_cluster() {
    // Six mixed jobs (LU, MW, Jacobi) churn through a 10-processor cluster
    // with staggered submissions: every job must finish, the pool must end
    // whole, and at least one resize must have occurred along the way.
    let runtime = ReshapeRuntime::new(Universe::new(10, 1, NetModel::ideal()), QueuePolicy::Backfill);
    let mut jobs = Vec::new();
    for round in 0..2 {
        jobs.push(runtime.submit(
            JobSpec::new(
                format!("LU-{round}"),
                TopologyPref::Grid { problem_size: 24 },
                ProcessorConfig::new(1, 2),
                4,
            ),
            reshape::apps::lu_app(24, 4, 1.0e6),
        ));
        jobs.push(runtime.submit(
            JobSpec::new(
                format!("MW-{round}"),
                TopologyPref::AnyCount { min: 2, max: 8, step: 2 },
                ProcessorConfig::linear(2),
                3,
            ),
            reshape::apps::mw_app(100, 1e-4, 16),
        ));
        jobs.push(runtime.submit(
            JobSpec::new(
                format!("Jacobi-{round}"),
                TopologyPref::Linear { problem_size: 16, even_only: true },
                ProcessorConfig::linear(2),
                4,
            ),
            reshape::apps::jacobi_app(16, 2, 2, 1.0e5),
        ));
        std::thread::sleep(Duration::from_millis(15));
    }
    for j in &jobs {
        let state = runtime.wait_for(*j, Duration::from_secs(120)).unwrap();
        assert!(matches!(state, JobState::Finished { .. }), "{j}: {state:?}");
    }
    let core = runtime.core().lock();
    assert_eq!(core.idle_procs(), 10, "pool whole after churn");
    use reshape::core::EventKind;
    let resizes = core
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Expanded { .. } | EventKind::Shrunk { .. }))
        .count();
    assert!(resizes > 0, "expected some resizing during churn");
}

#[test]
fn cancelled_running_job_terminates_cooperatively() {
    // A long-running job is cancelled mid-run: its processes exit at the
    // next resize point, its processors return, and a queued job starts.
    let runtime = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let long = runtime.submit(
        JobSpec::new(
            "long",
            TopologyPref::Grid { problem_size: 16 },
            ProcessorConfig::new(2, 2),
            500, // would run a long time if not cancelled
        )
        .static_job(),
        reshape::apps::lu_app(16, 2, 1.0e6),
    );
    let queued = runtime.submit(
        JobSpec::new(
            "queued",
            TopologyPref::Grid { problem_size: 16 },
            ProcessorConfig::new(2, 2),
            2,
        )
        .static_job(),
        reshape::apps::lu_app(16, 2, 1.0e6),
    );
    // Let it get going, then cancel.
    std::thread::sleep(Duration::from_millis(30));
    runtime.cancel(long);
    let state = runtime.wait_for(long, Duration::from_secs(60)).unwrap();
    assert!(matches!(state, JobState::Cancelled { .. }), "{state:?}");
    assert!(matches!(
        runtime.wait_for(queued, Duration::from_secs(60)).unwrap(),
        JobState::Finished { .. }
    ));
    assert_eq!(runtime.core().lock().idle_procs(), 4);
}

#[test]
fn non_rank0_failure_is_attributed_by_node() {
    // A worker rank (not rank 0) panics: the System Monitor attributes the
    // failure to the job through node occupancy and reclaims resources
    // immediately, without waiting for rank 0's receive timeout.
    use reshape::core::driver::AppDef;
    use reshape::blockcyclic::{Descriptor, DistMatrix};
    let runtime = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let app = AppDef::new(
        |grid| {
            let desc = Descriptor::square(8, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 0.0)]
        },
        |grid, _m, it| {
            if it == 1 && grid.comm().rank() == 3 {
                panic!("worker rank failure");
            }
            grid.comm().advance(0.01);
        },
    );
    let spec = JobSpec::new(
        "flaky-worker",
        TopologyPref::Grid { problem_size: 8 },
        ProcessorConfig::new(2, 2),
        5,
    )
    .static_job();
    let job = runtime.submit(spec, app);
    // The monitor should mark the job failed well before the 120 s
    // deadlock timeout that would otherwise be the only signal.
    let state = runtime.wait_for(job, Duration::from_secs(30)).unwrap();
    assert!(
        matches!(state, JobState::Failed { ref reason, .. } if reason.contains("worker rank")),
        "{state:?}"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if runtime.core().lock().idle_procs() == 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "resources never reclaimed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn real_mode_iteration_times_scale_like_the_model() {
    // Cross-check the two modes: run a real LU app under the
    // Gigabit-Ethernet virtual clock at 2 and at 8 processors and verify
    // the virtual iteration time improves, as the analytic model predicts
    // for compute-dominated sizes.
    let time_at = |procs: (usize, usize)| -> f64 {
        let runtime = ReshapeRuntime::new(
            Universe::new(8, 1, NetModel::gigabit_ethernet()),
            QueuePolicy::Fcfs,
        );
        let spec = JobSpec::new(
            "LU-x",
            TopologyPref::Grid { problem_size: 48 },
            ProcessorConfig::new(procs.0, procs.1),
            3,
        )
        .static_job();
        // Low rate makes modeled compute dominate the (small) messages.
        let job = runtime.submit(spec, reshape::apps::lu_app(48, 4, 1.0e6));
        runtime.wait_for(job, Duration::from_secs(60)).unwrap();
        let core = runtime.core().lock();
        let prof = core.profiler().profile(job).unwrap();
        prof.time_at(ProcessorConfig::new(procs.0, procs.1)).unwrap()
    };
    let t2 = time_at((1, 2));
    let t8 = time_at((2, 4));
    assert!(
        t8 < t2 * 0.5,
        "8 procs ({t8:.4}s) should be well under half of 2 procs ({t2:.4}s)"
    );
}

#[test]
fn advanced_api_manual_orchestration() {
    // The paper's Advanced Functional API: the application itself calls
    // contact_scheduler and actuates the directive (Figure 1(b)'s state
    // machine), instead of letting resize() do it. Here a 6-rank job asks
    // the scheduler at each step; when a second job queues, the scheduler
    // orders a shrink, the app redistributes and the surplus ranks depart.
    use reshape::blockcyclic::{Descriptor, DistMatrix};
    use reshape::core::driver::{
        AppDef, DriverShared, ResizeContext, Resolution, RetryPolicy, SchedulerLink,
    };
    use reshape::core::{Directive, JobId, SchedulerCore};
    use std::sync::{Arc, Mutex};

    struct CoreLink(Mutex<SchedulerCore>);
    impl SchedulerLink for CoreLink {
        fn resize_point(&self, job: JobId, it: f64, rt: f64, now: f64) -> Directive {
            self.0.lock().unwrap().resize_point(job, it, rt, now).0
        }
        fn note_redist(&self, job: JobId, f: ProcessorConfig, t: ProcessorConfig, s: f64) {
            self.0.lock().unwrap().note_redist_cost(job, f, t, s);
        }
        fn finished(&self, job: JobId, now: f64) {
            self.0.lock().unwrap().on_finished(job, now);
        }
    }

    let n = 24usize;
    let mut core = SchedulerCore::new(6, QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "advanced",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(2, 3),
        100,
    );
    let (job, starts) = core.submit(spec, 0.0);
    assert_eq!(starts.len(), 1);
    // Seed the profile so the shrink rule has a visited smaller config
    // ("applications can only shrink to configurations on which they have
    // previously run").
    core.profiler_mut()
        .record_iteration(job, ProcessorConfig::new(1, 2), 50.0, 0.0);
    // A competitor queues, demanding 2 processors.
    let spec_b = JobSpec::new(
        "queued",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(1, 2),
        1,
    );
    let (_b, s) = core.submit(spec_b, 1.0);
    assert!(s.is_empty(), "cluster is full; B must queue");
    let link = Arc::new(CoreLink(Mutex::new(core)));

    let uni = Universe::new(6, 1, NetModel::ideal());
    let link2 = Arc::clone(&link);
    uni.launch(6, None, "advanced", move |comm| {
        let shared = Arc::new(DriverShared {
            job,
            app: AppDef::new(|_| Vec::new(), |_, _, _| {}),
            iterations: 100,
            link: link2.clone() as Arc<dyn SchedulerLink>,
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            survivable: false,
        });
        let mut ctx = ResizeContext::attach(Arc::clone(&shared), comm.clone(), ProcessorConfig::new(2, 3));
        let desc = Descriptor::square(n, 2, 2, 3);
        let mut mats = vec![DistMatrix::from_fn(desc, ctx.grid().myrow(), ctx.grid().mycol(), |i, j| {
            (i * n + j) as f64
        })];
        // One modeled iteration, then the manual resize-point protocol.
        comm.advance(40.0);
        let t = ctx.log(40.0);
        match ctx.contact_scheduler(t) {
            Directive::Shrink { to } => {
                assert_eq!(to, ProcessorConfig::new(1, 2));
                match ctx.shrink_processors(to, &mut mats) {
                    Resolution::Depart => {
                        assert!(comm.rank() >= 2, "only surplus ranks depart");
                    }
                    Resolution::Resized => {
                        assert!(comm.rank() < 2);
                        // Data survived the manual redistribution.
                        let d = mats[0].desc;
                        for li in 0..mats[0].local_rows() {
                            let gi = d.local_to_global_row(li, mats[0].myrow);
                            for lj in 0..mats[0].local_cols() {
                                let gj = d.local_to_global_col(lj, mats[0].mycol);
                                assert_eq!(mats[0].get_local(li, lj), (gi * n + gj) as f64);
                            }
                        }
                    }
                    Resolution::Continue => unreachable!(),
                }
            }
            other => panic!("expected a shrink directive for the queued job, got {other:?}"),
        }
    })
    .join_ok();
}

#[test]
fn static_jobs_never_change_size() {
    let runtime = ReshapeRuntime::new(Universe::new(16, 1, NetModel::ideal()), QueuePolicy::Fcfs);
    let spec = JobSpec::new(
        "static-LU",
        TopologyPref::Grid { problem_size: 24 },
        ProcessorConfig::new(2, 2),
        5,
    )
    .static_job();
    let job = runtime.submit(spec, reshape::apps::lu_app(24, 4, 1.0e6));
    let (state, visited) = finish(&runtime, job);
    assert!(matches!(state, JobState::Finished { .. }));
    assert_eq!(visited, vec![ProcessorConfig::new(2, 2)]);
}
