//! Assertions over the paper's experiments: each figure/table harness's
//! underlying computation must reproduce the paper's qualitative (and,
//! where stated, quantitative) findings. These tests pin the claims that
//! EXPERIMENTS.md reports.

use reshape::clustersim::{
    fig3a_job, fig3b_jobs, workload1, workload2, AppModel, ClusterSim, MachineParams, RedistMode,
};
use reshape::core::{ProcessorConfig, TopologyPref};

fn machine() -> MachineParams {
    MachineParams::system_x()
}

// ---------------------------------------------------------------- Table 2

#[test]
fn table2_chains_match_paper() {
    let cases: Vec<(usize, (usize, usize), usize, &str)> = vec![
        (8000, (1, 2), 40, "1x2 2x2 2x4 4x4 4x5 5x5 5x8"),
        (
            12000,
            (1, 2),
            48,
            "1x2 2x2 2x3 3x3 3x4 4x4 4x5 5x5 5x6 6x6 6x8",
        ),
        (14000, (2, 2), 49, "2x2 2x4 4x4 4x5 5x5 5x7 7x7"),
        (16000, (2, 2), 40, "2x2 2x4 4x4 4x5 5x5 5x8"),
        (20000, (2, 2), 40, "2x2 2x4 4x4 4x5 5x5 5x8"),
    ];
    for (n, start, cap, expect) in cases {
        let chain = TopologyPref::Grid { problem_size: n }
            .chain_from(ProcessorConfig::new(start.0, start.1), cap);
        let got: Vec<String> = chain.iter().map(|c| c.to_string()).collect();
        assert_eq!(got.join(" "), expect, "problem size {n}");
    }
}

// ------------------------------------------------------------- Figure 2(a)

#[test]
fn fig2a_lu_24000_improves_about_19_percent_from_16_to_20() {
    let lu = AppModel::Lu { n: 24000 };
    let t16 = lu.iter_time(ProcessorConfig::new(4, 4), &machine());
    let t20 = lu.iter_time(ProcessorConfig::new(4, 5), &machine());
    let gain = (t16 - t20) / t16 * 100.0;
    assert!(
        (10.0..25.0).contains(&gain),
        "paper reports 19.1%, model gives {gain:.1}%"
    );
}

#[test]
fn fig2a_small_problems_flatten_big_problems_keep_improving() {
    let m = machine();
    // 8000 gains little late in its chain...
    let lu8 = AppModel::Lu { n: 8000 };
    let late_gain = {
        let a = lu8.iter_time(ProcessorConfig::new(5, 5), &m);
        let b = lu8.iter_time(ProcessorConfig::new(5, 8), &m);
        (a - b) / a
    };
    // ...while 24000 still gains substantially at the same transition.
    let lu24 = AppModel::Lu { n: 24000 };
    let big_gain = {
        let a = lu24.iter_time(ProcessorConfig::new(5, 5), &m);
        let b = lu24.iter_time(ProcessorConfig::new(5, 8), &m);
        (a - b) / a
    };
    assert!(
        big_gain > late_gain + 0.05,
        "24000 gains {big_gain:.2}, 8000 gains {late_gain:.2}"
    );
}

// ------------------------------------------------------------- Figure 2(b)

#[test]
fn fig2b_redist_cost_monotone_in_n_and_antitone_in_p() {
    let m = machine();
    // Antitone in processor count along the 12000 chain.
    let lu12 = AppModel::Lu { n: 12000 };
    let chain = TopologyPref::Grid { problem_size: 12000 }
        .chain_from(ProcessorConfig::new(1, 2), 48);
    let costs: Vec<f64> = chain
        .windows(2)
        .map(|w| lu12.redist_cost(w[0], w[1], &m))
        .collect();
    for w in costs.windows(2) {
        assert!(
            w[1] <= w[0] * 1.15,
            "redistribution cost should broadly fall along the chain: {costs:?}"
        );
    }
    // Monotone in matrix size for a fixed transition.
    let c8 = AppModel::Lu { n: 8000 }.redist_cost(
        ProcessorConfig::new(2, 2),
        ProcessorConfig::new(2, 4),
        &m,
    );
    let c24 = AppModel::Lu { n: 24000 }.redist_cost(
        ProcessorConfig::new(2, 2),
        ProcessorConfig::new(2, 4),
        &m,
    );
    assert!(c24 > 4.0 * c8);
}

#[test]
fn fig2b_absolute_scale_matches_paper_band() {
    // Paper Figure 2(b): costs range from under a second up to ~23 s for
    // the 24000 matrix at small processor counts.
    let m = machine();
    let worst = AppModel::Lu { n: 24000 }.redist_cost(
        ProcessorConfig::new(2, 4),
        ProcessorConfig::new(4, 4),
        &m,
    );
    assert!(
        (5.0..40.0).contains(&worst),
        "24000 first expansion should be O(10 s), got {worst:.1}"
    );
}

// ------------------------------------------------------------- Figure 3(a)

#[test]
fn fig3a_trajectory_and_deltas_match_paper() {
    let result = ClusterSim::new(36, machine()).run(&[fig3a_job()]);
    let job = &result.jobs[0];
    let procs: Vec<usize> = job.alloc_history.iter().map(|&(_, p)| p).collect();
    assert_eq!(procs, vec![2, 4, 6, 9, 12, 16, 12, 0]);
    // The paper's iteration-time column.
    let times: Vec<f64> = job.iter_log.iter().map(|r| r.iter_time).collect();
    let expect = [129.63, 112.52, 82.31, 79.61, 69.85, 74.91, 69.85];
    for (i, e) in expect.iter().enumerate() {
        assert!((times[i] - e).abs() < 1e-6, "iteration {i}: {} vs {e}", times[i]);
    }
    // Redistribution costs decrease along the trajectory, as in the paper
    // (8.00, 7.74, 5.25, 4.86, 4.41).
    let redists: Vec<f64> = job.iter_log[1..6].iter().map(|r| r.redist_time).collect();
    assert!(redists[0] > redists[4], "{redists:?}");
    assert!(
        redists.iter().all(|&r| (0.5..12.0).contains(&r)),
        "costs should be paper-magnitude: {redists:?}"
    );
}

// ------------------------------------------------------------- Figure 3(b)

#[test]
fn fig3b_checkpoint_vs_reshape_ratios_in_paper_band() {
    // Paper: LU 8.3x, MM 4.5x, Jacobi 14.5x, FFT 7.9x; MW identical.
    let m = machine();
    for job in fig3b_jobs() {
        let reshape_run = ClusterSim::new(36, m).run(std::slice::from_ref(&job));
        let ckpt_run = ClusterSim::new(36, m)
            .with_redist_mode(RedistMode::Checkpoint)
            .run(std::slice::from_ref(&job));
        let r = reshape_run.jobs[0].redist_total;
        let c = ckpt_run.jobs[0].redist_total;
        match job.spec.name.as_str() {
            "Master-worker" => {
                assert!((c - r).abs() < 1.0, "MW: ckpt {c} vs reshape {r}")
            }
            name => {
                let ratio = c / r;
                assert!(
                    (3.0..30.0).contains(&ratio),
                    "{name}: checkpoint/reshape ratio {ratio:.1} outside the paper band"
                );
            }
        }
    }
}

#[test]
fn fig3b_dynamic_beats_static_for_grid_apps() {
    let m = machine();
    for job in fig3b_jobs() {
        if job.spec.name == "Master-worker" {
            continue; // MW starts at its only size here.
        }
        let dynamic = ClusterSim::new(36, m).run(std::slice::from_ref(&job));
        let mut s = job.clone();
        s.spec = s.spec.static_job();
        let stat = ClusterSim::new(36, m).run(std::slice::from_ref(&s));
        assert!(
            dynamic.jobs[0].turnaround < stat.jobs[0].turnaround,
            "{}: dynamic {} >= static {}",
            job.spec.name,
            dynamic.jobs[0].turnaround,
            stat.jobs[0].turnaround
        );
    }
}

// ----------------------------------------------------- Figure 4 / Table 4

#[test]
fn table4_dynamic_improves_turnaround_and_utilization() {
    let m = machine();
    let w = workload1();
    let dynamic = ClusterSim::new(w.total_procs, m).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, m).run(&w.as_static().jobs);
    // Every resizable app improves; MW (finished before processors freed)
    // stays put — the paper's Table 4 shows -0.53 s, i.e. a wash.
    for name in ["LU", "MM", "Jacobi", "2D FFT"] {
        let d = dynamic.jobs.iter().find(|j| j.name == name).unwrap();
        let s = stat.jobs.iter().find(|j| j.name == name).unwrap();
        assert!(
            d.turnaround < s.turnaround,
            "{name}: {} vs {}",
            d.turnaround,
            s.turnaround
        );
    }
    let mw_d = dynamic.jobs.iter().find(|j| j.name == "Master-worker").unwrap();
    let mw_s = stat.jobs.iter().find(|j| j.name == "Master-worker").unwrap();
    assert!((mw_d.turnaround - mw_s.turnaround).abs() < 5.0);
    // Utilization jumps by double digits (paper: 39.7% -> 70.7%).
    assert!(
        dynamic.utilization - stat.utilization > 0.10,
        "static {:.3} dynamic {:.3}",
        stat.utilization,
        dynamic.utilization
    );
}

#[test]
fn fig4a_lu_expands_to_fill_drained_cluster() {
    // Paper: "As there were no other running or queued jobs in the system
    // after t=2764 seconds, the LU application expanded to the maximum
    // number of processors."
    let w = workload1();
    let result = ClusterSim::new(w.total_procs, machine()).run(&w.jobs);
    let lu = result.jobs.iter().find(|j| j.name == "LU").unwrap();
    let max_lu = lu.alloc_history.iter().map(|&(_, p)| p).max().unwrap();
    assert!(
        max_lu >= 20,
        "LU should grow large once the cluster drains: {:?}",
        lu.alloc_history
    );
}

#[test]
fn fig4b_dynamic_keeps_more_processors_busy() {
    let w = workload1();
    let m = machine();
    let dynamic = ClusterSim::new(w.total_procs, m).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, m).run(&w.as_static().jobs);
    let peak = |r: &reshape::clustersim::SimResult| {
        r.busy_series().iter().map(|&(_, b)| b).max().unwrap_or(0)
    };
    assert!(peak(&dynamic) > peak(&stat), "dynamic should reach higher occupancy");
    assert!(peak(&dynamic) <= w.total_procs);
}

// ----------------------------------------------------- Figure 5 / Table 5

#[test]
fn table5_gains_are_modest() {
    let w = workload2();
    let m = machine();
    let dynamic = ClusterSim::new(w.total_procs, m).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, m).run(&w.as_static().jobs);
    for (d, s) in dynamic.jobs.iter().zip(&stat.jobs) {
        let rel = (s.turnaround - d.turnaround) / s.turnaround;
        assert!(
            (-0.02..0.35).contains(&rel),
            "{}: W2 improvements must be modest, got {:.1}%",
            d.name,
            rel * 100.0
        );
    }
    // The statically scheduled FFT is identical in both runs (paper: 0.00).
    let f_d = dynamic.jobs.iter().find(|j| j.name == "2D FFT").unwrap();
    let f_s = stat.jobs.iter().find(|j| j.name == "2D FFT").unwrap();
    assert!((f_d.turnaround - f_s.turnaround).abs() < 1e-6);
}

#[test]
fn fig5a_running_jobs_shrink_for_arrivals() {
    // Paper: LU shrinks to accommodate the master-worker arrival at t=560.
    let w = workload2();
    let result = ClusterSim::new(w.total_procs, machine()).run(&w.jobs);
    let lu = result.jobs.iter().find(|j| j.name == "LU").unwrap();
    let shrank = lu
        .alloc_history
        .windows(2)
        .any(|x| x[1].1 < x[0].1 && x[1].1 > 0);
    assert!(shrank, "LU should shrink for queued arrivals: {:?}", lu.alloc_history);
}
