//! Cross-crate redistribution integrity: data survives the exact expansion
//! chains of the paper's Table 2, through both the contention-free
//! schedules and the checkpoint baseline, including real process spawning.

use reshape::blockcyclic::{Descriptor, DistMatrix};
use reshape::core::{ProcessorConfig, TopologyPref};
use reshape::mpisim::{NetModel, Universe};
use reshape::redist::{
    checkpoint_redistribute, evaluate_2d, plan_2d, redistribute_2d, CheckpointParams,
};

/// Walk a whole Table-2-style chain on a fixed communicator, verifying the
/// matrix after every redistribution step.
#[test]
fn data_survives_a_full_configuration_chain() {
    // Problem size 40 with max 20 procs: chain 1x2 -> 2x2 -> 2x4 -> 4x4 -> 4x5.
    let pref = TopologyPref::Grid { problem_size: 40 };
    let chain = pref.chain_from(ProcessorConfig::new(1, 2), 20);
    assert!(chain.len() >= 4, "need a real chain, got {chain:?}");
    let max = chain.last().unwrap().procs();
    let n = 40usize;

    let chain2 = chain.clone();
    Universe::new(max, 1, NetModel::ideal())
        .launch(max, None, "chain", move |comm| {
            let value = |i: usize, j: usize| (i * 7919 + j * 13) as f64;
            let first = chain2[0];
            let me = comm.rank();
            let mut cur: Option<DistMatrix<f64>> = (me < first.procs()).then(|| {
                let d = Descriptor::square(n, 2, first.rows, first.cols);
                DistMatrix::from_fn(d, me / first.cols, me % first.cols, value)
            });
            for w in chain2.windows(2) {
                let (from, to) = (w[0], w[1]);
                let src = Descriptor::square(n, 2, from.rows, from.cols);
                let dst = Descriptor::square(n, 2, to.rows, to.cols);
                let plan = plan_2d(src, dst);
                cur = redistribute_2d(&comm, &plan, cur.as_ref());
                if let Some(m) = &cur {
                    for li in 0..m.local_rows() {
                        let gi = dst.local_to_global_row(li, m.myrow);
                        for lj in 0..m.local_cols() {
                            let gj = dst.local_to_global_col(lj, m.mycol);
                            assert_eq!(
                                m.get_local(li, lj),
                                value(gi, gj),
                                "corruption at ({gi},{gj}) after {from} -> {to}"
                            );
                        }
                    }
                }
            }
            // And shrink all the way back down in one hop.
            let last = *chain2.last().unwrap();
            let src = Descriptor::square(n, 2, last.rows, last.cols);
            let dst = Descriptor::square(n, 2, first.rows, first.cols);
            let plan = plan_2d(src, dst);
            let back = redistribute_2d(&comm, &plan, cur.as_ref());
            if me < first.procs() {
                let m = back.expect("rank stays in the small grid");
                for li in 0..m.local_rows() {
                    let gi = dst.local_to_global_row(li, m.myrow);
                    for lj in 0..m.local_cols() {
                        let gj = dst.local_to_global_col(lj, m.mycol);
                        assert_eq!(m.get_local(li, lj), value(gi, gj));
                    }
                }
            }
        })
        .join_ok();
}

/// Checkpoint and schedule-based redistribution must produce identical
/// destination panels.
#[test]
fn checkpoint_and_schedule_agree() {
    Universe::new(6, 1, NetModel::ideal())
        .launch(6, None, "agree", |comm| {
            let src_d = Descriptor::square(24, 2, 2, 3);
            let dst_d = Descriptor::square(24, 2, 1, 4);
            let me = comm.rank();
            let src = DistMatrix::from_fn(src_d, me / 3, me % 3, |i, j| (i * 100 + j) as f64);
            let via_plan = redistribute_2d(&comm, &plan_2d(src_d, dst_d), Some(&src));
            let via_ckpt = checkpoint_redistribute(
                &comm,
                src_d,
                dst_d,
                Some(&src),
                &CheckpointParams::default(),
                None,
            );
            match (via_plan, via_ckpt) {
                (Some(a), Some(b)) => assert_eq!(a.local_data(), b.local_data()),
                (None, None) => assert!(me >= 4),
                other => panic!("presence mismatch on rank {me}: {:?}", other.0.is_some()),
            }
        })
        .join_ok();
}

/// Expansion through actual process spawning: the virtual-time cost of the
/// real execution must track the analytic evaluator's estimate.
#[test]
fn real_execution_cost_tracks_evaluator() {
    let n = 512usize;
    let uni = Universe::new(8, 1, NetModel::gigabit_ethernet());
    let h = uni.launch(2, None, "cost", move |comm| {
        let src_d = Descriptor::square(n, 16, 1, 2);
        let dst_d = Descriptor::square(n, 16, 2, 2);
        let a = DistMatrix::from_fn(src_d, 0, comm.rank(), |i, j| (i + j) as f64);
        let merged = comm.spawn_merge(2, None, "grow", move |ctx| {
            let merged = ctx.parent.merge();
            let plan = plan_2d(src_d, dst_d);
            redistribute_2d::<f64>(&merged, &plan, None).expect("child gets panel");
        });
        let plan = plan_2d(src_d, dst_d);
        let t0 = merged.vtime();
        redistribute_2d(&merged, &plan, Some(&a)).expect("parent keeps panel");
        let measured = merged.vtime() - t0;
        let estimate = evaluate_2d(&plan, 8, &NetModel::gigabit_ethernet()).seconds;
        // The evaluator assumes lock-step steps; the execution pipelines, so
        // allow a generous band — they must agree within ~5x either way.
        assert!(
            measured < estimate * 5.0 + 0.01 && estimate < measured * 5.0 + 0.01,
            "measured {measured} vs estimated {estimate}"
        );
    });
    h.join_ok();
    uni.join_spawned();
}

/// Redistribution of several matrices back-to-back (as the resize library
/// does for an application with multiple registered arrays).
#[test]
fn multiple_arrays_redistribute_independently() {
    Universe::new(4, 1, NetModel::ideal())
        .launch(4, None, "multi", |comm| {
            let src_d = Descriptor::square(16, 2, 2, 2);
            let dst_d = Descriptor::square(16, 2, 1, 4);
            let me = comm.rank();
            let mats: Vec<DistMatrix<f64>> = (0..3)
                .map(|k| {
                    DistMatrix::from_fn(src_d, me / 2, me % 2, move |i, j| {
                        (k * 1000 + i * 16 + j) as f64
                    })
                })
                .collect();
            let plan = plan_2d(src_d, dst_d);
            for (k, m) in mats.iter().enumerate() {
                let out = redistribute_2d(&comm, &plan, Some(m)).expect("all ranks in dst");
                for li in 0..out.local_rows() {
                    let gi = dst_d.local_to_global_row(li, out.myrow);
                    for lj in 0..out.local_cols() {
                        let gj = dst_d.local_to_global_col(lj, out.mycol);
                        assert_eq!(out.get_local(li, lj), (k * 1000 + gi * 16 + gj) as f64);
                    }
                }
            }
        })
        .join_ok();
}
