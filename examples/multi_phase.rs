//! A multi-phase application (the paper's intro motivation: "applications
//! that consist of multiple phases, some of which are more computationally
//! intense than others, could benefit from resizing to the most appropriate
//! node count for each phase").
//!
//! Phase 1 is a light 2-D FFT pass over an image stack; phase 2 multiplies
//! large matrices. The job declares the phase boundary; at it, the
//! scheduler's Performance Profiler resets the job's timing history so the
//! Remap Scheduler re-probes — growing the job for the heavy phase even
//! though the light phase had already found a small sweet spot.
//!
//! ```text
//! cargo run --example multi_phase
//! ```

use std::time::Duration;

use reshape::blockcyclic::{Descriptor, DistMatrix};
use reshape::core::driver::AppDef;
use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{JobSpec, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn main() {
    let n = 24usize;
    let runtime = ReshapeRuntime::new(Universe::new(16, 1, NetModel::ideal()), QueuePolicy::Fcfs);

    // Modeled per-iteration cost: the light phase stops improving at 4
    // processors; the heavy phase scales to the whole cluster.
    let app = AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                (i + j) as f64
            })]
        },
        |grid, _mats, iter| {
            let p = grid.nprow() * grid.npcol();
            let t = if iter < 6 {
                match p {
                    1 | 2 => 6.0 / p as f64,
                    4 => 2.0,
                    _ => 3.0, // past the light phase's sweet spot
                }
            } else {
                400.0 / p as f64 // heavy phase: more processors always help
            };
            grid.comm().advance(t);
        },
    )
    .with_phase_starts(vec![6]);

    let spec = JobSpec::new(
        "fft-then-mm",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(1, 2),
        16,
    );
    let job = runtime.submit(spec, app);
    let state = runtime.wait_for(job, Duration::from_secs(120)).unwrap();
    println!("final state: {state:?}");

    let core = runtime.core().lock();
    let prof = core.profiler().profile(job).expect("profiled");
    println!("\npost-phase-change profiler history (phase 1 was forgotten):");
    for rec in prof.history() {
        println!(
            "  {:>5} ({:>2} procs): {:>7.2} s/iter",
            rec.config.to_string(),
            rec.config.procs(),
            rec.iter_time
        );
    }
    let max_procs = prof.history().iter().map(|r| r.config.procs()).max().unwrap();
    assert!(
        max_procs > 4,
        "the heavy phase should have re-expanded past the light phase's sweet spot"
    );
    println!(
        "\nmulti_phase OK: phase 2 re-probed and grew to {max_procs} processors \
         after phase 1 settled at 4"
    );
}
