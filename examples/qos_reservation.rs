//! Quality-of-service scheduling and advance reservations — the paper's
//! §5 future work, implemented on top of the same Remap Scheduler
//! machinery.
//!
//! Scenario: a long LU job grows into a 36-processor cluster. Then
//! 1. a *high-priority* job arrives and jumps the queue — the LU shrinks
//!    for it at its next resize point;
//! 2. an *advance reservation* window opens and the scheduler squeezes the
//!    running jobs out of the reserved capacity, starting the reservation
//!    owner's job the moment it is submitted against the window.
//!
//! ```text
//! cargo run --example qos_reservation
//! ```

use reshape::clustersim::{AppModel, ClusterSim, MachineParams, SimJob};
use reshape::core::{EventKind, JobSpec, ProcessorConfig, TopologyPref};

fn lu(n: usize, initial: (usize, usize), iters: usize, arrival: f64) -> SimJob {
    SimJob {
        spec: JobSpec::new(
            format!("LU-{n}"),
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(initial.0, initial.1),
            iters,
        ),
        model: AppModel::Lu { n },
        arrival,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

fn main() {
    let machine = MachineParams::system_x();

    // --- Part 1: priority preemption via resizing -----------------------
    println!("== priority: a high-priority arrival shrinks the running job ==");
    // A 16-processor cluster: the background LU grows into all of it, so
    // the urgent arrival can only start if the LU gives processors back.
    let mut urgent = lu(8000, (2, 4), 3, 400.0);
    urgent.spec = urgent.spec.with_priority(9);
    urgent.spec.name = "URGENT".into();
    let result = ClusterSim::new(16, machine).run(&[lu(21000, (2, 3), 10, 0.0), urgent]);
    for j in &result.jobs {
        println!(
            "  {:<8} arrival {:>5.0}s  started {:>5.0}s  turnaround {:>7.1}s",
            j.name, j.submitted, j.started, j.turnaround
        );
    }
    let urgent_out = &result.jobs[1];
    let wait = urgent_out.started - urgent_out.submitted;
    println!("  URGENT waited {wait:.0}s for processors");
    let lu_shrank = result.events.iter().any(|e| {
        matches!(e.kind, EventKind::Shrunk { .. }) && e.time >= 400.0
    });
    assert!(lu_shrank, "the running LU should have shrunk for the arrival");

    // --- Part 2: advance reservation ------------------------------------
    println!("\n== reservation: a 20-processor window at t=800 ==");
    let sim = ClusterSim::new(36, machine).with_reservation(800.0, 4000.0, 20);
    // The background job would happily take the whole cluster...
    let background = lu(21000, (2, 3), 10, 0.0);
    // ...but must squeeze down once the window opens.
    let result = sim.run(std::slice::from_ref(&background));
    println!("  background allocation history:");
    for &(t, p) in &result.jobs[0].alloc_history {
        println!("    t={t:>7.0}s  {p:>2} processors");
    }
    let after: Vec<usize> = result.jobs[0]
        .alloc_history
        .iter()
        .filter(|&&(t, p)| t > 800.0 && p > 0)
        .map(|&(_, p)| p)
        .collect();
    assert!(
        after.iter().all(|&p| p <= 16),
        "background job must leave 20 processors for the reservation"
    );
    println!("\nqos_reservation OK: priorities preempt via resizing; reservations are honored");
}
