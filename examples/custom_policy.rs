//! Using ReSHAPE as a research platform for resizing policies — the
//! paper's stated motivation: "a significant motivation for ReSHAPE in
//! general, and the Performance Profiler in particular, is to serve as a
//! platform for research into more sophisticated resizing strategies."
//!
//! This example compares four Remap Scheduler variants on a batch of
//! random job mixes, then shows how to evaluate a *custom* decision rule
//! directly against the profiler state via `decide_with`'s building
//! blocks.
//!
//! ```text
//! cargo run --example custom_policy
//! ```

use reshape::clustersim::{random_workload, ClusterSim, MachineParams};
use reshape::core::{
    decide_with, JobId, ProcessorConfig, Profiler, RemapDecision, RemapPolicy, SystemSnapshot,
};

fn main() {
    let machine = MachineParams::system_x();

    // --- Part 1: batch comparison over random mixes ----------------------
    println!("mean turnaround over 10 random 6-job mixes (36 processors):\n");
    let variants = [
        RemapPolicy::Paper,
        RemapPolicy::GreedyExpand,
        RemapPolicy::NeverShrink,
        RemapPolicy::CostBenefit,
    ];
    for policy in variants {
        let mut total = 0.0;
        let mut jobs = 0usize;
        for seed in 0..10 {
            let w = random_workload(seed, 6, 36);
            let r = ClusterSim::new(w.total_procs, machine)
                .with_remap_policy(policy)
                .run(&w.jobs);
            total += r.jobs.iter().map(|j| j.turnaround).sum::<f64>();
            jobs += r.jobs.len();
        }
        println!("  {policy:>14?}: {:8.1} s", total / jobs as f64);
    }

    // --- Part 2: interrogate a policy decision directly ------------------
    // Build a profile by hand (as the Performance Profiler would) and ask
    // each policy what it would do — the unit-testing workflow for new
    // strategies.
    let mut profiler = Profiler::new();
    let job = JobId(1);
    let spec = reshape::core::JobSpec::new(
        "probe",
        reshape::core::TopologyPref::Grid {
            problem_size: 12000,
        },
        ProcessorConfig::new(1, 2),
        10,
    );
    // Synthetic numbers chosen so the trade-off is visible: iterations are
    // short (8 s at 3x3) relative to the measured 5.25 s redistribution.
    profiler.record_iteration(job, ProcessorConfig::new(2, 3), 9.5, 0.0);
    profiler.record_resize(
        job,
        reshape::core::Resize::Expanded {
            from: ProcessorConfig::new(2, 3),
            to: ProcessorConfig::new(3, 3),
        },
        5.25,
    );
    profiler.record_iteration(job, ProcessorConfig::new(3, 3), 8.0, 5.25);

    println!("\nat 3x3 with 27 idle processors and 2 iterations left:");
    for (policy, remaining) in [
        (RemapPolicy::Paper, 2),
        (RemapPolicy::CostBenefit, 2),
        (RemapPolicy::CostBenefit, 8),
    ] {
        let sys = SystemSnapshot {
            idle_procs: 27,
            queue_head_need: None,
            remaining_iters: remaining,
        };
        let d = decide_with(
            policy,
            &spec,
            ProcessorConfig::new(3, 3),
            profiler.profile(job).unwrap(),
            &sys,
            48,
        );
        println!("  {policy:>12?} (remaining={remaining}): {d:?}");
    }
    // The paper policy probes upward; cost-benefit holds with 2 iterations
    // left (the ~5 s redistribution cannot be amortized) but grows with 8.
    let short = decide_with(
        RemapPolicy::CostBenefit,
        &spec,
        ProcessorConfig::new(3, 3),
        profiler.profile(job).unwrap(),
        &SystemSnapshot {
            idle_procs: 27,
            queue_head_need: None,
            remaining_iters: 2,
        },
        48,
    );
    assert_eq!(short, RemapDecision::NoChange);
    println!("\ncustom_policy OK");
}
