//! Quickstart: submit one resizable LU job to the ReSHAPE runtime on a
//! simulated 16-node cluster and watch it grow.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{JobSpec, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn main() {
    // A virtual cluster: 16 nodes x 1 processor, Gigabit-Ethernet-like
    // network costs on the virtual clock.
    let universe = Universe::new(16, 1, NetModel::gigabit_ethernet());
    let runtime = ReshapeRuntime::new(universe, QueuePolicy::Fcfs);

    // An LU job on a 48x48 matrix (tiny, so the example runs in
    // milliseconds), 8 outer iterations — one factorization each — starting
    // on a 1x2 processor grid.
    let spec = JobSpec::new(
        "LU-quickstart",
        TopologyPref::Grid { problem_size: 48 },
        ProcessorConfig::new(1, 2),
        8,
    );
    // reshape_apps::lu_app computes a *real* distributed factorization
    // every iteration and advances the virtual clock by the modeled
    // compute time, so the scheduler sees realistic scaling.
    let app = reshape::apps::lu_app(48, 4, 2.0e6);

    println!("submitting {} ...", spec.name);
    let job = runtime.submit(spec, app);
    let state = runtime.wait_for(job, Duration::from_secs(60)).unwrap();
    println!("final state: {state:?}");

    // Inspect what the Performance Profiler recorded.
    let core = runtime.core().lock();
    let profile = core.profiler().profile(job).expect("job ran");
    println!("\nconfigurations visited (iteration time in virtual seconds):");
    for cfg in profile.visited() {
        println!(
            "  {:>5}  ({} procs): {:>8.3} s/iter",
            cfg.to_string(),
            cfg.procs(),
            profile.time_at(*cfg).unwrap_or(f64::NAN)
        );
    }
    println!("\nscheduling events:");
    for e in core.events() {
        println!("  {:?}", e.kind);
    }
    assert!(
        profile.visited().len() > 1,
        "the job should have been resized at least once"
    );
    println!("\nquickstart OK: the job grew from 2 processors into the idle cluster");
}
