//! A job mix under dynamic resizing, twice over:
//!
//! 1. **Real execution** — two resizable applications share a small
//!    simulated cluster; the first grows into the idle processors, then
//!    shrinks to accommodate the second when it arrives (paper §4.2's
//!    mechanism at laptop scale).
//! 2. **Paper scale** — the same scheduler code drives the paper's
//!    workload 1 (LU-21000, MM-14000, master–worker, Jacobi-8000,
//!    FFT-8192 on 36 processors) through the discrete-event simulator and
//!    prints the Table 4 comparison.
//!
//! ```text
//! cargo run --example workload_mix
//! ```

use std::time::Duration;

use reshape::clustersim::{workload1, ClusterSim, MachineParams};
use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{EventKind, JobSpec, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn real_mode() {
    println!("== real execution: two jobs on 8 processors ==");
    let universe = Universe::new(8, 1, NetModel::ideal());
    let runtime = ReshapeRuntime::new(universe, QueuePolicy::Fcfs);

    let mk = |name: &str, iters: usize| {
        JobSpec::new(
            name,
            TopologyPref::Grid { problem_size: 24 },
            ProcessorConfig::new(1, 2),
            iters,
        )
    };
    // Job A: long-running, genuinely computes distributed LU each iteration.
    let a = runtime.submit(mk("A-long", 14), reshape::apps::lu_app(24, 2, 1.0e5));
    // Give A time to expand, then submit B.
    std::thread::sleep(Duration::from_millis(100));
    let b = runtime.submit(mk("B-late", 4), reshape::apps::lu_app(24, 2, 1.0e5));

    runtime.wait_for(a, Duration::from_secs(120)).unwrap();
    runtime.wait_for(b, Duration::from_secs(120)).unwrap();

    let core = runtime.core().lock();
    println!("scheduler event trace:");
    let mut saw_shrink = false;
    let mut saw_expand = false;
    for e in core.events() {
        println!("  t={:>8.2}  {}  {:?}", e.time, e.job, e.kind);
        saw_shrink |= matches!(e.kind, EventKind::Shrunk { .. });
        saw_expand |= matches!(e.kind, EventKind::Expanded { .. });
    }
    assert!(saw_expand, "job A should have expanded into the idle cluster");
    println!(
        "A expanded into idle processors{}",
        if saw_shrink {
            "; a shrink made room for B"
        } else {
            "; B fit into remaining processors"
        }
    );
}

fn paper_scale() {
    println!("\n== paper scale: workload 1 through the cluster simulator ==");
    let machine = MachineParams::system_x();
    let w = workload1();
    let dynamic = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
    let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);

    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "job", "static", "dynamic", "diff"
    );
    for (d, s) in dynamic.jobs.iter().zip(&stat.jobs) {
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1}",
            d.name,
            s.turnaround,
            d.turnaround,
            s.turnaround - d.turnaround
        );
    }
    println!(
        "utilization: static {:.1}% -> dynamic {:.1}%",
        stat.utilization * 100.0,
        dynamic.utilization * 100.0
    );
    assert!(dynamic.utilization > stat.utilization);
}

fn main() {
    real_mode();
    paper_scale();
    println!("\nworkload_mix OK");
}
