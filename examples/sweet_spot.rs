//! Adaptive sweet-spot detection (paper §4.1.1).
//!
//! An application whose scaling *turns over* is grown step by step by the
//! Remap Scheduler; when an expansion degrades the iteration time, ReSHAPE
//! shrinks it back to the previous configuration and holds it there — the
//! trajectory of the paper's Figure 3(a).
//!
//! ```text
//! cargo run --example sweet_spot
//! ```

use std::sync::Arc;
use std::time::Duration;

use reshape::blockcyclic::{Descriptor, DistMatrix};
use reshape::core::driver::AppDef;
use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{JobSpec, ProcessorConfig, QueuePolicy, Resize, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn main() {
    let universe = Universe::new(32, 1, NetModel::ideal());
    let runtime = ReshapeRuntime::new(universe, QueuePolicy::Fcfs);

    let n = 24usize;
    // Synthetic scaling curve with a sweet spot at 6 processors: expanding
    // to 9 will *hurt*, and the scheduler must revert.
    let curve = |p: usize| -> f64 {
        match p {
            1 | 2 => 30.0 / p as f64,
            4 => 9.0,
            6 => 6.5,
            _ => 8.0, // beyond the sweet spot
        }
    };
    let app = AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                (i * n + j) as f64
            })]
        },
        move |grid, _mats, _iter| {
            let p = grid.nprow() * grid.npcol();
            grid.comm().advance(curve(p));
        },
    );
    let spec = JobSpec::new(
        "sweet-spot-probe",
        TopologyPref::Grid { problem_size: n },
        ProcessorConfig::new(1, 2),
        12,
    );
    let job = runtime.submit(spec, app);
    runtime.wait_for(job, Duration::from_secs(60)).unwrap();

    let core = runtime.core().lock();
    let profile = core.profiler().profile(job).expect("profiled");
    println!("iteration history (config -> time):");
    for rec in profile.history() {
        println!(
            "  {:>5} ({:>2} procs): {:6.2} s  (redist before: {:.3} s)",
            rec.config.to_string(),
            rec.config.procs(),
            rec.iter_time,
            rec.redist_time
        );
    }
    let last = profile.history().last().expect("ran");
    println!("\nsweet spot settled at {} processors", last.config.procs());
    assert_eq!(
        last.config.procs(),
        6,
        "the scheduler should hold the job at its 6-processor sweet spot"
    );
    assert_eq!(profile.last_expansion_improved(), Some(false));
    // The revert itself is in the resize record.
    assert!(matches!(
        profile.last_resize(),
        Some(Resize::Shrunk { .. })
    ));
    println!("sweet_spot OK: expansion past 6 was detected as unprofitable and reverted");
    drop(core);
    let _ = Arc::strong_count(runtime.universe());
}
