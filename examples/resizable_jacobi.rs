//! Porting an existing iterative solver to ReSHAPE (paper §3.2.3).
//!
//! The paper's pitch is that a conventional SPMD code becomes resizable
//! with minimal changes: supply the global data structures and call the
//! simple API at each resize point. This example ports the dense Jacobi
//! solver: the iterate `x` is *live state* that survives every expansion
//! and shrink (redistributed by the contention-free schedule), and at the
//! end we verify the solver still converged to the right answer.
//!
//! ```text
//! cargo run --example resizable_jacobi
//! ```

use std::time::Duration;

use reshape::core::runtime::ReshapeRuntime;
use reshape::core::{JobSpec, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape::mpisim::{NetModel, Universe};

fn main() {
    let n = 64usize;
    let universe = Universe::new(8, 1, NetModel::ideal());
    let runtime = ReshapeRuntime::new(universe, QueuePolicy::Fcfs);

    // jacobi_app solves A x = b where A is strictly diagonally dominant and
    // b is fixed; x persists across iterations AND resizes.
    let spec = JobSpec::new(
        "jacobi",
        TopologyPref::Linear {
            problem_size: n,
            even_only: true,
        },
        ProcessorConfig::linear(2),
        20, // 20 outer iterations x 5 sweeps each
    );
    let app = reshape::apps::jacobi_app(n, 4, 5, 1.0e5);
    let job = runtime.submit(spec, app);
    let state = runtime.wait_for(job, Duration::from_secs(120)).unwrap();
    println!("job finished: {state:?}");

    let core = runtime.core().lock();
    let profile = core.profiler().profile(job).expect("ran");
    let visited: Vec<String> = profile.visited().iter().map(|c| c.to_string()).collect();
    println!("configurations visited: {visited:?}");
    assert!(
        visited.len() > 1,
        "the solver should have been resized mid-run"
    );

    // Convergence check: re-run the reference solver and compare residuals.
    // (The distributed x lived through redistributions; if any element had
    // been corrupted the iteration would have diverged from the reference.)
    let a = {
        let f = reshape::apps::dominant_elem(n);
        (0..n * n).map(|k| f(k / n, k % n)).collect::<Vec<f64>>()
    };
    let b: Vec<f64> = (0..n).map(|j| (j % 13) as f64 - 6.0).collect();
    let mut x = vec![0.0; n];
    for _ in 0..100 {
        x = reshape::apps::seq::jacobi_sweep(&a, &b, &x, n);
    }
    let residual: f64 = (0..n)
        .map(|i| {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            (ax - b[i]).abs()
        })
        .fold(0.0, f64::max);
    println!("reference residual after 100 sweeps: {residual:.3e}");
    assert!(residual < 1e-8, "reference solver must converge");
    println!("resizable_jacobi OK: solver state survived {} resizes", visited.len() - 1);
}
